#!/usr/bin/env python3
"""Adversarial analysis: the paper's theory results demonstrated empirically.

Three demonstrations:

1. **Lemma 8** - Rotor-Push does not have the working-set property: the
   adaptive adversary confines its requests to ``2x - 1`` elements, yet the
   access cost keeps climbing to the full tree depth.
2. **Section 1.1** - the naive Move-To-Front generalisation is not
   constant-competitive: on a round-robin path sequence it pays the full depth
   per request while Rotor-Push (and the offline optimum) pay far less.
3. **Theorem 7** - the credit/potential argument of the 12-competitiveness
   proof, checked round by round on random input.

The whole analysis is a shipped golden plan — this script is equivalent to::

    repro run adversarial

The adversaries themselves are registry-validated specs
(:class:`repro.workloads.AdversarySpec`) built and simulated worker-side, so
``repro run adversarial --jobs 4`` fans the constructions out.

Run with::

    python examples/adversarial_analysis.py
"""

from __future__ import annotations

import repro
from repro.plans import load_golden_plan


def main() -> None:
    tables = repro.run(load_golden_plan("adversarial"))

    print("=== Lemma 8: Rotor-Push lacks the working-set property ===")
    print(tables["lemma8"].format_text())
    print(
        "The requests only ever touch ~2x-1 elements, yet the access cost reaches\n"
        "the full tree depth: the cost grows linearly in the working-set size, so\n"
        "the working-set property fails (while the total cost is still 12-competitive).\n"
    )

    print("=== Section 1.1: the naive Move-To-Front tree is not competitive ===")
    print(tables["mtf_lower_bound"].format_text())
    print(
        "Move-To-Front keeps paying ~depth per request on the round-robin path\n"
        "sequence, while an offline algorithm could pack those few elements into\n"
        "the top O(log depth) levels - the Omega(log n / log log n) gap of the paper.\n"
    )

    print("=== Theorem 7: per-round amortised inequality of the credit argument ===")
    summary = tables["theorem7"].rows[0]
    print(
        f"rounds checked: {int(summary['rounds'])}, violations: {int(summary['violations'])}, "
        f"max amortised-cost / bound ratio: {summary['max_ratio']:.3f}"
    )
    print(
        "Every round satisfied  cost(Rotor-Push) + credit change <= 12 * (opt level + 1),\n"
        "the inequality at the heart of the 12-competitiveness proof."
    )


if __name__ == "__main__":
    main()
