#!/usr/bin/env python3
"""Adversarial analysis: the paper's theory results demonstrated empirically.

Three demonstrations:

1. **Lemma 8** - Rotor-Push does not have the working-set property: the
   adaptive adversary confines its requests to ``2x - 1`` elements, yet the
   access cost keeps climbing to the full tree depth.
2. **Section 1.1** - the naive Move-To-Front generalisation is not
   constant-competitive: on a round-robin path sequence it pays the full depth
   per request while Rotor-Push (and the offline optimum) pay far less.
3. **Theorem 7** - the credit/potential argument of the 12-competitiveness
   proof, checked round by round on random input.

Run with::

    python examples/adversarial_analysis.py
"""

from __future__ import annotations

from repro.analysis.potential import PotentialTracker
from repro.analysis.working_set import max_working_set_violation
from repro.experiments.table1_properties import run_mtf_lower_bound
from repro.sim.results import ResultTable
from repro.workloads import RotorPushWorkingSetAdversary, UniformWorkload


def lemma8_demo() -> None:
    print("=== Lemma 8: Rotor-Push lacks the working-set property ===")
    table = ResultTable(
        name="lemma8",
        columns=["depth", "working_set_limit", "max_access_cost", "cost_to_log_rank_ratio"],
    )
    for depth in (4, 6, 8, 10):
        adversary = RotorPushWorkingSetAdversary(depth)
        sequence, costs = adversary.generate_with_costs(2_500)
        table.add_row(
            depth=depth,
            working_set_limit=2 * (depth + 1) - 1,
            max_access_cost=max(record.access_cost for record in costs),
            cost_to_log_rank_ratio=max_working_set_violation(sequence, costs),
        )
    print(table.format_text())
    print(
        "The requests only ever touch ~2x-1 elements, yet the access cost reaches\n"
        "the full tree depth: the cost grows linearly in the working-set size, so\n"
        "the working-set property fails (while the total cost is still 12-competitive).\n"
    )


def mtf_lower_bound_demo() -> None:
    print("=== Section 1.1: the naive Move-To-Front tree is not competitive ===")
    table = run_mtf_lower_bound([3, 5, 7, 9, 11], cycles=30)
    print(table.format_text())
    print(
        "Move-To-Front keeps paying ~depth per request on the round-robin path\n"
        "sequence, while an offline algorithm could pack those few elements into\n"
        "the top O(log depth) levels - the Omega(log n / log log n) gap of the paper.\n"
    )


def theorem7_demo() -> None:
    print("=== Theorem 7: per-round amortised inequality of the credit argument ===")
    tracker = PotentialTracker(depth=6)
    workload = UniformWorkload(tracker.algorithm.network.tree.n_nodes, seed=3)
    tracker.run(workload.generate(3_000))
    summary = tracker.summary()
    print(
        f"rounds checked: {int(summary['rounds'])}, violations: {int(summary['violations'])}, "
        f"max amortised-cost / bound ratio: {summary['max_ratio']:.3f}"
    )
    print(
        "Every round satisfied  cost(Rotor-Push) + credit change <= 12 * (opt level + 1),\n"
        "the inequality at the heart of the 12-competitiveness proof."
    )


if __name__ == "__main__":
    lemma8_demo()
    mtf_lower_bound_demo()
    theorem7_demo()
