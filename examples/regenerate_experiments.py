#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: run every experiment of the paper's evaluation.

Runs the full experiment suite (Table 1, Figures 2-7) at the chosen scale and
writes the Markdown report comparing the paper's qualitative findings with the
measured results.

Run with::

    python examples/regenerate_experiments.py [scale] [output]

``scale`` is tiny / small / default / paper (default: tiny; the paper scale
takes hours in pure Python), ``output`` defaults to EXPERIMENTS.md in the
current directory.
"""

from __future__ import annotations

import sys
import time

from repro.experiments.report import generate_report


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    output = sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md"
    started = time.time()
    print(f"Running all experiments at scale {scale!r} ...")
    generate_report(scale=scale, path=output)
    print(f"Wrote {output} in {time.time() - started:.1f} s")


if __name__ == "__main__":
    main()
