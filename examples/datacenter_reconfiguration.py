#!/usr/bin/env python3
"""Reconfigurable datacenter scenario: multi-source self-adjusting network.

The paper motivates single-source self-adjusting trees as the building block of
reconfigurable optical datacenter networks.  This example runs that
application end to end:

* 64 racks (network nodes), four of which host traffic-heavy services and act
  as sources;
* each source's traffic is clustered (a Markov workload over its destination
  racks), the typical structure of datacenter traces;
* every source maintains its own self-adjusting tree over the other racks; the
  union of the trees is the physical topology, whose degree stays bounded;
* the same trace is routed over Rotor-Push trees, Random-Push trees and
  demand-oblivious static trees, and the resulting costs are compared against
  the bounded-degree composition guarantee.

The whole scenario is a shipped golden plan — this script is equivalent to::

    repro run datacenter

and :func:`repro.experiments.build_datacenter_plan` is the builder that
produced the golden copy (``src/repro/experiments/plans/datacenter.json``).

Run with::

    python examples/datacenter_reconfiguration.py
"""

from __future__ import annotations

import repro
from repro.plans import load_golden_plan


def main() -> None:
    plan = load_golden_plan("datacenter")
    table = repro.run(plan)

    print(table.format_text())
    print(
        "\nThe self-adjusting trees keep frequently contacted racks near their"
        " sources,\nso the average hop count (access cost) drops well below the"
        " oblivious static trees',\nwhile the physical degree stays within the"
        " bounded-degree composition guarantee\n(the degree_bound column)."
    )


if __name__ == "__main__":
    main()
