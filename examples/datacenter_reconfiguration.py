#!/usr/bin/env python3
"""Reconfigurable datacenter scenario: multi-source self-adjusting network.

The paper motivates single-source self-adjusting trees as the building block of
reconfigurable optical datacenter networks.  This example builds that
application end to end:

* 64 racks (network nodes), four of which host traffic-heavy services and act
  as sources;
* each source's traffic is clustered (a Markov workload over its destination
  racks), the typical structure of datacenter traces;
* every source maintains its own self-adjusting tree over the other racks; the
  union of the trees is the physical topology, whose degree stays bounded;
* the same trace is routed over Rotor-Push trees, Random-Push trees and
  demand-oblivious static trees, and the resulting costs and topology degrees
  are compared.

Run with::

    python examples/datacenter_reconfiguration.py
"""

from __future__ import annotations

from repro.network import (
    MultiSourceNetwork,
    degree_statistics,
    multi_source_topology,
    theoretical_degree_bound,
    trace_from_workloads,
)
from repro.sim.results import ResultTable
from repro.workloads import MarkovWorkload

N_RACKS = 64
SOURCES = [0, 1, 2, 3]
REQUESTS_PER_SOURCE = 2_000


def build_trace():
    """Clustered per-source traffic: each service talks mostly to a few racks."""
    workloads = {
        source: MarkovWorkload(
            N_RACKS,
            n_neighbours=4,
            self_loop=0.55,
            neighbour_probability=0.35,
            seed=100 + source,
        )
        for source in SOURCES
    }
    return trace_from_workloads(
        N_RACKS, workloads, requests_per_source=REQUESTS_PER_SOURCE, interleave_seed=5
    )


def main() -> None:
    trace = build_trace()
    print(
        f"Routing {len(trace)} requests from {len(SOURCES)} sources over "
        f"{N_RACKS} racks.\n"
    )

    table = ResultTable(
        name="datacenter_reconfiguration",
        columns=["tree_algorithm", "avg_hops", "avg_reconfig", "avg_total", "max_degree"],
    )
    for algorithm in ("rotor-push", "random-push", "static-oblivious"):
        network = MultiSourceNetwork(
            N_RACKS, sources=SOURCES, algorithm=algorithm, base_seed=9
        )
        summary = network.serve_trace(trace)
        stats = degree_statistics(multi_source_topology(network))
        table.add_row(
            tree_algorithm=algorithm,
            avg_hops=summary["average_access_cost"],
            avg_reconfig=summary["average_adjustment_cost"],
            avg_total=summary["average_total_cost"],
            max_degree=stats["max_degree"],
        )

    print(table.format_text())
    print()
    print(
        "Theoretical degree bound for "
        f"{len(SOURCES)} source trees: {theoretical_degree_bound(len(SOURCES))}"
    )
    print(
        "\nThe self-adjusting trees keep frequently contacted racks near their"
        " sources,\nso the average hop count (access cost) drops well below the"
        " oblivious static trees',\nwhile the physical degree stays within the"
        " bounded-degree composition guarantee."
    )


if __name__ == "__main__":
    main()
