#!/usr/bin/env python3
"""Locality study: how temporal and spatial locality change the algorithm ranking.

Reproduces the core of the paper's Q2/Q3/Q4 analysis at a laptop-friendly
scale and renders the results as text plots:

* a sweep over the repeat probability ``p`` (temporal locality, Figure 3),
* a sweep over the Zipf exponent ``a`` (spatial locality, Figure 4),
* the combined-locality grid for Rotor-Push vs the oblivious static tree
  (Figure 5a).

Run with::

    python examples/locality_study.py [scale]

where ``scale`` is one of tiny / small / default / paper (default: tiny).
"""

from __future__ import annotations

import sys

from repro.experiments import run_q2, run_q3, run_q4_wireframe
from repro.experiments.config import get_scale
from repro.experiments.plotting import heatmap, line_chart
from repro.experiments.q2_temporal import series_for_plot as q2_series
from repro.experiments.q3_spatial import series_for_plot as q3_series
from repro.experiments.q4_combined import wireframe_grid


def main(scale: str = "tiny") -> None:
    config = get_scale(scale)
    print(
        f"Running the locality study at scale {config.name!r}: "
        f"{config.n_nodes} nodes, {config.n_requests} requests, {config.n_trials} trials.\n"
    )

    # ---- Q2: temporal locality ------------------------------------------------
    q2_table = run_q2(scale)
    totals = q2_series(q2_table, metric="mean_total_cost")
    print(
        line_chart(
            "Figure 3 - average total cost vs repeat probability p",
            config.temporal_probabilities,
            totals,
        )
    )
    print()

    # ---- Q3: spatial locality -------------------------------------------------
    q3_table = run_q3(scale)
    q3_totals = q3_series(q3_table, metric="mean_total_cost")
    print(
        line_chart(
            "Figure 4 - average total cost vs Zipf exponent a",
            config.zipf_exponents,
            q3_totals,
        )
    )
    print()

    # ---- Q4: combined locality --------------------------------------------------
    q4_table = run_q4_wireframe(scale)
    probabilities, exponents, grid = wireframe_grid(q4_table)
    print(
        heatmap(
            "Figure 5a - Rotor-Push minus Static-Oblivious (rows: p, columns: a)",
            probabilities,
            exponents,
            grid,
        )
    )
    print()
    print(
        "Negative numbers mean the self-adjusting tree is cheaper than the static\n"
        "oblivious tree; the benefit is largest when temporal and spatial locality\n"
        "are combined (bottom-right of the grid), as in the paper."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "tiny")
