"""RetryPolicy, FaultSpec and the RunConfig resilience knobs.

The spec-layer contract of the resilience PR: the new knobs behave like
every other spec field in the repo — validated at construction, JSON
round-trippable, recursively overridable from the CLI — and the fault spec
is registry-validated with the usual "unknown name lists the registered
ones" error shape.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ExperimentError, PlanError
from repro.plans import RunConfig, TrialPlan, ExperimentPlan, plan_with_overrides
from repro.resilience import FAULT_MODES, FaultSpec, RetryPolicy, fault_spec_from_env
from repro.resilience.faults import FAULT_SPEC_ENV
from repro.workloads.spec import WorkloadSpec


class TestRetryPolicy:
    def test_delay_is_capped_exponential(self):
        policy = RetryPolicy(
            max_retries=5, backoff_base=0.1, backoff_max=0.35, jitter=0.0
        )
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.35)  # capped
        assert policy.delay(10) == pytest.approx(0.35)

    def test_jitter_stretches_within_bounds(self):
        plain = RetryPolicy(backoff_base=0.1, backoff_max=10.0, jitter=0.0)
        jittered = RetryPolicy(backoff_base=0.1, backoff_max=10.0, jitter=0.25)
        for attempt in (1, 2, 3):
            for token in (0, 1, 7):
                base = plain.delay(attempt)
                delay = jittered.delay(attempt, token=token)
                assert base <= delay <= base * 1.25
        # the cap bounds the jittered delay too
        capped = RetryPolicy(backoff_base=1.0, backoff_max=1.0, jitter=1.0)
        assert capped.delay(5, token=3) == 1.0

    def test_jitter_is_deterministic_and_seeded(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_max=10.0)
        # pure function of (policy, attempt, token): stable across instances
        clone = RetryPolicy.from_dict(policy.to_dict())
        for attempt in (1, 2, 3):
            for token in (0, 5, 99):
                assert policy.delay(attempt, token=token) == clone.delay(
                    attempt, token=token
                )
        # different tokens de-correlate simultaneous retries ...
        delays = {policy.delay(1, token=token) for token in range(8)}
        assert len(delays) == 8
        # ... and a different seed re-draws the whole schedule
        reseeded = RetryPolicy(backoff_base=0.1, backoff_max=10.0, seed=1)
        assert reseeded.delay(1, token=0) != policy.delay(1, token=0)

    def test_roundtrip(self):
        policy = RetryPolicy(
            max_retries=4, backoff_base=0.2, backoff_max=1.5, jitter=0.5, seed=3
        )
        assert RetryPolicy.from_dict(policy.to_dict()) == policy
        assert json.loads(json.dumps(policy.to_dict())) == policy.to_dict()
        with pytest.raises(ExperimentError, match="unknown retry-policy keys"):
            RetryPolicy.from_dict({**policy.to_dict(), "surprise": 1})

    def test_validation(self):
        with pytest.raises(ExperimentError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ExperimentError, match="backoff_base"):
            RetryPolicy(backoff_base=-0.1)
        with pytest.raises(ExperimentError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ExperimentError, match="seed"):
            RetryPolicy(seed=0.5)
        with pytest.raises(ExperimentError, match="1-based"):
            RetryPolicy().delay(0)

    def test_for_config_is_duck_typed(self):
        config = RunConfig(n_requests=10, n_trials=1, max_retries=7)
        assert RetryPolicy.for_config(config).max_retries == 7

        class Legacy:  # config-like object predating the knob
            pass

        assert RetryPolicy.for_config(Legacy()).max_retries == RetryPolicy().max_retries


class TestRunConfigKnobs:
    def test_defaults_and_roundtrip(self):
        config = RunConfig(
            n_requests=10,
            n_trials=1,
            worker_timeout=30.0,
            max_retries=4,
            cache_dir=".cache",
        )
        data = config.to_dict()
        assert data["worker_timeout"] == 30.0
        assert data["max_retries"] == 4
        assert data["cache_dir"] == ".cache"
        assert RunConfig.from_dict(data) == config
        # absent keys fall back to the defaults (old documents stay valid)
        old = {"n_requests": 10, "n_trials": 1}
        config = RunConfig.from_dict(old)
        assert config.worker_timeout is None
        assert config.max_retries == 2
        assert config.cache_dir is None

    def test_validation(self):
        with pytest.raises(PlanError, match="worker_timeout"):
            RunConfig(n_requests=10, n_trials=1, worker_timeout=0)
        with pytest.raises(PlanError, match="max_retries"):
            RunConfig(n_requests=10, n_trials=1, max_retries=-1)
        with pytest.raises(PlanError, match="max_retries"):
            RunConfig(n_requests=10, n_trials=1, max_retries=True)
        with pytest.raises(PlanError, match="cache_dir"):
            RunConfig(n_requests=10, n_trials=1, cache_dir="")

    def test_with_overrides(self):
        config = RunConfig(n_requests=10, n_trials=1)
        updated = config.with_overrides(
            worker_timeout=12.5, max_retries=9, cache_dir="store"
        )
        assert updated.worker_timeout == 12.5
        assert updated.max_retries == 9
        assert updated.cache_dir == "store"
        # None keeps the existing value
        assert updated.with_overrides() == updated

    def test_executor_knob(self):
        config = RunConfig(
            n_requests=10, n_trials=1, executor="tcp://10.0.0.1:7777,10.0.0.2:7777"
        )
        data = config.to_dict()
        assert data["executor"] == "tcp://10.0.0.1:7777,10.0.0.2:7777"
        assert RunConfig.from_dict(data) == config
        # old documents (no executor key) default to local execution
        assert RunConfig.from_dict({"n_requests": 10, "n_trials": 1}).executor is None
        updated = RunConfig(n_requests=10, n_trials=1).with_overrides(
            executor="tcp://127.0.0.1:9"
        )
        assert updated.executor == "tcp://127.0.0.1:9"
        # the address format is validated eagerly, like every other knob
        with pytest.raises(PlanError, match="executor scheme"):
            RunConfig(n_requests=10, n_trials=1, executor="http://host:1")
        with pytest.raises(PlanError, match="HOST:PORT"):
            RunConfig(n_requests=10, n_trials=1, executor="tcp://host")

    def test_plan_with_overrides_recurses(self):
        stage = TrialPlan(
            name="stage",
            n_nodes=15,
            workload=WorkloadSpec.create("uniform", n_elements=15),
            algorithms=("rotor-push",),
            config=RunConfig(n_requests=10, n_trials=1),
        )
        experiment = ExperimentPlan(
            name="exp", stages=(("a", stage), ("b", stage)), assembler="tables"
        )
        overridden = plan_with_overrides(
            experiment, max_retries=6, cache_dir="deep-store"
        )
        for _key, sub in overridden.stages:
            assert sub.config.max_retries == 6
            assert sub.config.cache_dir == "deep-store"


class TestFaultSpec:
    def test_unknown_mode_lists_registered(self, tmp_path):
        with pytest.raises(ExperimentError) as excinfo:
            FaultSpec(mode="meteor", arm_dir=str(tmp_path))
        message = str(excinfo.value)
        assert "meteor" in message
        for mode in FAULT_MODES:
            assert mode in message

    def test_requires_arm_dir(self):
        with pytest.raises(ExperimentError, match="arm_dir"):
            FaultSpec(mode="crash")

    def test_roundtrip(self, tmp_path):
        spec = FaultSpec(
            mode="exception",
            trials=(0, 2),
            arm_dir=str(tmp_path),
            max_triggers=3,
            seed=11,
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ExperimentError, match="unknown fault-spec keys"):
            FaultSpec.from_dict({**spec.to_dict(), "surprise": 1})

    def test_trigger_budget_is_counted_in_files(self, tmp_path):
        spec = FaultSpec(
            mode="exception", trials=(0,), arm_dir=str(tmp_path), max_triggers=2
        )
        assert spec._claim_trigger(0, "rotor-push")
        assert spec._claim_trigger(0, "rotor-push")
        assert not spec._claim_trigger(0, "rotor-push")  # budget spent
        assert spec.triggers_fired(0, "rotor-push") == 2
        # other payloads count independently
        assert spec._claim_trigger(0, "random-push")
        # a re-built spec (a "new process") sees the same budget
        fresh = FaultSpec.from_dict(spec.to_dict())
        assert not fresh._claim_trigger(0, "rotor-push")

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(FAULT_SPEC_ENV, raising=False)
        assert fault_spec_from_env() is None
        spec = FaultSpec(mode="crash", trials=(1,), arm_dir=str(tmp_path))
        monkeypatch.setenv(FAULT_SPEC_ENV, json.dumps(spec.to_dict()))
        assert fault_spec_from_env() == spec
        # a path to a JSON file works too
        path = tmp_path / "fault.json"
        path.write_text(json.dumps(spec.to_dict()))
        monkeypatch.setenv(FAULT_SPEC_ENV, str(path))
        assert fault_spec_from_env() == spec
        monkeypatch.setenv(FAULT_SPEC_ENV, "no-such-file.json")
        with pytest.raises(ExperimentError, match="neither"):
            fault_spec_from_env()
