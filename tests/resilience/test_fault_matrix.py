"""Fault matrix: every failure mode recovers byte-identically, no orphans.

The acceptance pin of the resilient executor: for every registered fault
mode (worker crash, hang past the worker timeout, transient exception) and
every fan-out width, a faulted campaign completes with output byte-identical
to a fault-free serial run — retries, pool rebuilds and the serial
degradation path are all observationally free because results are pure
functions of payload content.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.exceptions import FaultInjectionError
from repro.plans import RunConfig, TrialPlan, last_run_stats, plan_with_overrides
from repro.plans.execute import run as run_plan
from repro.resilience import FaultSpec, RetryPolicy
from repro.resilience.faults import FAULT_SPEC_ENV
from repro.sim import parallel
from repro.sim.parallel import map_ordered, shutdown_persistent_pool
from repro.workloads.spec import WorkloadSpec


def small_plan(**config_kwargs) -> TrialPlan:
    config_kwargs.setdefault("n_requests", 120)
    config_kwargs.setdefault("n_trials", 2)
    config_kwargs.setdefault("base_seed", 5)
    return TrialPlan(
        name="fault-test",
        n_nodes=31,
        workload=WorkloadSpec.create(
            "combined-locality",
            n_elements=31,
            zipf_exponent=1.4,
            repeat_probability=0.4,
        ),
        algorithms=("rotor-push", "random-push"),
        config=RunConfig(**config_kwargs),
    )


@pytest.fixture()
def clean_table():
    return run_plan(small_plan())


def run_with_fault(monkeypatch, spec: FaultSpec, **config_kwargs):
    monkeypatch.setenv(FAULT_SPEC_ENV, json.dumps(spec.to_dict()))
    try:
        table = run_plan(small_plan(**config_kwargs))
    finally:
        monkeypatch.delenv(FAULT_SPEC_ENV)
    return table, last_run_stats()


class TestFaultMatrix:
    @pytest.mark.parametrize("n_jobs", [1, 4])
    @pytest.mark.parametrize("mode", ["crash", "hang", "exception"])
    def test_recovery_is_byte_identical(
        self, monkeypatch, tmp_path, clean_table, mode, n_jobs
    ):
        spec = FaultSpec(
            mode=mode,
            trials=(0,),
            arm_dir=str(tmp_path),
            max_triggers=1,
            hang_seconds=120.0,
        )
        config = {"n_jobs": n_jobs}
        if mode == "hang":
            config["worker_timeout"] = 0.75
        table, stats = run_with_fault(monkeypatch, spec, **config)
        assert table.rows == clean_table.rows
        if n_jobs > 1 and mode in ("crash", "hang"):
            assert stats.pool_rebuilds >= 1
        if mode == "exception":
            assert stats.retries >= 1

    def test_one_kill_per_retry_round_completes(
        self, monkeypatch, tmp_path, clean_table
    ):
        """The ISSUE's acceptance shape: a fault killing one worker per retry
        round must still let a 4-job sweep complete, byte-identical."""
        spec = FaultSpec(
            mode="crash", trials=(0, 1), arm_dir=str(tmp_path), max_triggers=1
        )
        table, stats = run_with_fault(monkeypatch, spec, n_jobs=4, max_retries=4)
        assert table.rows == clean_table.rows
        assert stats.pool_rebuilds >= 1

    def test_persistent_crashes_degrade_to_serial(
        self, monkeypatch, tmp_path, clean_table
    ):
        """A fault that keeps killing workers exhausts the rebuild budget;
        the executor must warn, degrade to in-process serial execution (where
        crash faults cannot fire — there is no worker to kill) and still
        produce the fault-free table."""
        spec = FaultSpec(
            mode="crash", trials=(0, 1), arm_dir=str(tmp_path), max_triggers=100
        )
        with pytest.warns(RuntimeWarning, match="degrading"):
            table, stats = run_with_fault(
                monkeypatch, spec, n_jobs=4, max_retries=1
            )
        assert table.rows == clean_table.rows
        assert stats.degraded

    def test_exhausted_exception_budget_propagates(self, monkeypatch, tmp_path):
        """When a payload fails more often than max_retries allows, the
        original exception must surface (serial path)."""
        spec = FaultSpec(
            mode="exception", trials=(0,), arm_dir=str(tmp_path), max_triggers=100
        )
        monkeypatch.setenv(FAULT_SPEC_ENV, json.dumps(spec.to_dict()))
        with pytest.raises(FaultInjectionError):
            run_plan(small_plan(max_retries=1))


def _identity(value):
    return value


def _fail_below_ten(value):
    if value < 10:
        raise ValueError(f"transient {value}")
    return value


class _Flaky:
    """Serial-path worker failing a fixed number of times per payload."""

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.seen = {}

    def __call__(self, value):
        count = self.seen.get(value, 0)
        self.seen[value] = count + 1
        if count < self.failures:
            raise ValueError(f"transient failure {count} for {value}")
        return value * 10


class TestMapOrdered:
    def test_serial_retry_preserves_order_and_counts(self):
        worker = _Flaky(failures=2)

        class Stats:
            retries = 0
            executed = 0

        stats = Stats()
        results = map_ordered(
            worker,
            [1, 2, 3],
            n_jobs=1,
            retry=RetryPolicy(max_retries=2, backoff_base=0.0),
            stats=stats,
        )
        assert results == [10, 20, 30]
        assert stats.retries == 6
        assert stats.executed == 3

    def test_serial_exhausted_budget_raises(self):
        worker = _Flaky(failures=3)
        with pytest.raises(ValueError, match="transient"):
            map_ordered(
                worker,
                [1],
                n_jobs=1,
                retry=RetryPolicy(max_retries=2, backoff_base=0.0),
            )

    def test_on_result_fires_per_completion(self):
        seen = []
        results = map_ordered(
            _identity,
            [4, 5, 6],
            n_jobs=1,
            on_result=lambda index, result: seen.append((index, result)),
        )
        assert results == [4, 5, 6]
        assert seen == [(0, 4), (1, 5), (2, 6)]

    def test_parallel_results_stay_ordered(self):
        results = map_ordered(_identity, list(range(40)), n_jobs=4)
        assert results == list(range(40))

    def test_keyboard_interrupt_tears_the_pool_down(self, monkeypatch):
        """The orphaned-worker satellite: an interrupt mid-fan-out must
        terminate the pool (no orphans) and re-raise."""
        shutdown_persistent_pool()

        def interrupted_wait(pending, timeout=None):
            raise KeyboardInterrupt

        monkeypatch.setattr(parallel, "_wait", interrupted_wait)
        with pytest.raises(KeyboardInterrupt):
            map_ordered(_identity, list(range(8)), n_jobs=2)
        assert parallel._pool is None
        monkeypatch.undo()
        # the executor recovers: the next fan-out builds a fresh pool
        assert map_ordered(_identity, [1, 2, 3], n_jobs=2) == [1, 2, 3]
