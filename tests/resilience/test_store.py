"""ResultStore: round-trips, atomicity, corruption handling, content keys.

The checkpoint store's contract: entries round-trip results exactly, a
corrupted/truncated/alien entry is a logged *miss* (never a crash), and the
content keys hash exactly the result-determining payload fields — throughput
knobs (``backend``, ``chunk_size``, ``n_jobs``) never split the cache.
"""

from __future__ import annotations

import logging

import pytest

import repro
from repro.plans import RunConfig, load_golden_plan, plan_with_overrides
from repro.resilience import ResultStore, payload_key, plan_hash
from repro.resilience.store import result_from_dict, result_to_dict
from repro.sim.engine import simulate
from repro.sim.runner import TrialRunner
from repro.workloads.spec import WorkloadSpec


def small_result(keep_records: bool = False):
    return simulate(
        "rotor-push",
        [1, 3, 5, 3, 1, 7, 2],
        n_nodes=15,
        placement_seed=3,
        seed=4,
        keep_records=keep_records,
        metadata={"trial": 0},
    )


def runner_payloads(**kwargs):
    config_kwargs = dict(n_requests=50, n_trials=2, base_seed=9)
    config_kwargs.update(kwargs)
    runner = TrialRunner(n_nodes=15, config=RunConfig(**config_kwargs))
    return runner.build_payloads(
        ["rotor-push", "random-push"],
        runner.trial_sources(
            lambda seed: WorkloadSpec.create("uniform", n_elements=15, seed=seed)
        ),
    )


class TestRoundTrip:
    @pytest.mark.parametrize("keep_records", [False, True])
    def test_result_document_roundtrip(self, keep_records):
        result = small_result(keep_records)
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.algorithm == result.algorithm
        assert rebuilt.total_access_cost == result.total_access_cost
        assert rebuilt.total_adjustment_cost == result.total_adjustment_cost
        assert rebuilt.metadata == result.metadata
        assert len(rebuilt.per_request) == len(result.per_request)
        for mine, theirs in zip(rebuilt.per_request, result.per_request):
            assert mine == theirs

    def test_store_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        result = small_result(keep_records=True)
        key = "ab" + "0" * 62
        assert key not in store
        assert store.get(key) is None
        path = store.put(key, result)
        assert path.is_file()
        assert key in store
        assert store.keys() == [key]
        assert len(store) == 1
        rebuilt = store.get(key)
        assert rebuilt.total_access_cost == result.total_access_cost


class TestCorruption:
    def make_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "cd" + "1" * 62
        path = store.put(key, small_result())
        return store, key, path

    def test_truncated_entry_is_a_logged_miss(self, tmp_path, caplog):
        store, key, path = self.make_entry(tmp_path)
        raw = path.read_text()
        path.write_text(raw[: len(raw) // 2])
        with caplog.at_level(logging.WARNING, logger="repro.resilience"):
            assert store.get(key) is None
        assert any("treating as missing" in record.message for record in caplog.records)

    def test_bitflipped_body_is_a_miss(self, tmp_path):
        store, key, path = self.make_entry(tmp_path)
        raw = path.read_text()
        path.write_text(raw.replace('"total_access_cost":', '"total_access_cost":9'))
        assert store.get(key) is None

    def test_alien_file_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ef" + "2" * 62
        path = store.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("this was never a checkpoint entry")
        assert store.get(key) is None

    def test_wrong_format_version_is_a_miss(self, tmp_path):
        store, key, path = self.make_entry(tmp_path)
        header, _, body = path.read_text().partition("\n")
        parts = header.split(" ")
        parts[1] = "999"
        path.write_text(" ".join(parts) + "\n" + body)
        assert store.get(key) is None

    def test_reput_heals_a_corrupt_entry(self, tmp_path):
        store, key, path = self.make_entry(tmp_path)
        path.write_text("garbage")
        assert store.get(key) is None
        store.put(key, small_result())
        assert store.get(key) is not None


class TestPayloadKey:
    def test_key_ignores_throughput_knobs(self):
        base = runner_payloads()
        for variant in (
            runner_payloads(backend="python"),
            runner_payloads(chunk_size=7),
            runner_payloads(n_jobs=4),
            runner_payloads(max_retries=9, cache_dir="elsewhere"),
            runner_payloads(executor="tcp://10.0.0.1:7777"),
        ):
            assert [payload_key(p) for p in base] == [payload_key(p) for p in variant]

    def test_key_tracks_result_determining_fields(self):
        base = [payload_key(p) for p in runner_payloads()]
        assert len(set(base)) == len(base)  # every (trial, algorithm) distinct
        reseeded = [payload_key(p) for p in runner_payloads(base_seed=10)]
        assert set(base).isdisjoint(reseeded)
        resized = [payload_key(p) for p in runner_payloads(n_requests=51)]
        assert set(base).isdisjoint(resized)


class TestMaintenance:
    def seeded_store(self, tmp_path, n: int = 3):
        store = ResultStore(tmp_path)
        keys = [f"{index:02x}" + "9" * 62 for index in range(n)]
        for key in keys:
            store.put(key, small_result())
        return store, keys

    def test_stats_counts_entries_bytes_and_orphans(self, tmp_path):
        store, keys = self.seeded_store(tmp_path)
        stats = store.stats()
        assert stats["entries"] == len(keys)
        assert stats["bytes"] > 0
        assert stats["orphans"] == 0
        # a temp file left behind by a crashed write shows up as an orphan
        (store.path_for(keys[0]).parent / ".dead0000-x.tmp").write_text("half")
        assert store.stats()["orphans"] == 1
        # an empty/missing store is all zeroes, not an error
        assert ResultStore(tmp_path / "nowhere").stats() == {
            "entries": 0,
            "bytes": 0,
            "orphans": 0,
        }

    def test_verify_reports_corrupt_entries_without_deleting(self, tmp_path):
        store, keys = self.seeded_store(tmp_path)
        store.path_for(keys[1]).write_text("garbage")
        report = store.verify()
        assert sorted(report["ok"]) == sorted([keys[0], keys[2]])
        assert report["corrupt"] == [keys[1]]
        assert store.path_for(keys[1]).is_file()  # reported, not removed

    def test_prune_drops_corrupt_entries_and_orphans_only(self, tmp_path):
        store, keys = self.seeded_store(tmp_path)
        store.path_for(keys[2]).write_text("garbage")
        orphan = store.path_for(keys[0]).parent / ".dead0000-x.tmp"
        orphan.write_text("half")
        assert store.prune() == {"corrupt": 1, "orphans": 1}
        assert not orphan.exists()
        assert not store.path_for(keys[2]).exists()
        # healthy entries are untouched and still served
        assert store.get(keys[0]) is not None
        assert store.get(keys[1]) is not None
        assert store.prune() == {"corrupt": 0, "orphans": 0}


class TestPlanHash:
    def test_hash_ignores_throughput_and_resilience_knobs(self):
        plan = load_golden_plan("smoke")
        assert plan_hash(plan) == plan_hash(
            plan_with_overrides(
                plan, n_jobs=8, chunk_size=64, backend="python", cache_dir="x",
                max_retries=9, executor="tcp://10.0.0.1:7777",
            )
        )

    def test_hash_tracks_run_content(self):
        plan = load_golden_plan("smoke")
        assert plan_hash(plan) != plan_hash(plan_with_overrides(plan, n_trials=7))
        assert plan_hash(plan) != plan_hash(plan_with_overrides(plan, n_requests=7))
