"""Checkpoint/resume for scenario-library plans.

The scenario assemblers (``adversarial``, ``corpus_pipeline``) fan their
payloads out through ``execute_payloads``, so a ``repro.run(plan,
cache=..., resume=True)`` call must checkpoint each payload and serve it
from the store on the next run — exactly the TrialPlan/NetworkPlan
contract, extended to the absorbed seed scenarios.
"""

from __future__ import annotations

import repro
from repro.experiments import build_adversarial_plan, build_corpus_pipeline_plan
from repro.plans import last_run_stats


def small_corpus_plan(**kwargs):
    kwargs.setdefault("n_books", 2)
    kwargs.setdefault("scale", 0.05)
    kwargs.setdefault("max_requests", 800)
    kwargs.setdefault("algorithms", ("rotor-push", "static-oblivious"))
    return build_corpus_pipeline_plan(**kwargs)


def small_adversarial_plan(**kwargs):
    kwargs.setdefault("lemma8_depths", (3,))
    kwargs.setdefault("lemma8_requests", 200)
    kwargs.setdefault("mtf_depths", (3, 4))
    kwargs.setdefault("mtf_cycles", 4)
    kwargs.setdefault("theorem7_depth", 3)
    kwargs.setdefault("theorem7_requests", 200)
    return build_adversarial_plan(**kwargs)


class TestCorpusResume:
    def test_warm_resume_serves_every_payload_from_the_store(self, tmp_path):
        # 2 books x 2 algorithms = 4 payloads
        cold = repro.run(small_corpus_plan(), cache=tmp_path)
        stats = last_run_stats()
        assert stats.executed == 4
        assert stats.stored == 4

        warm = repro.run(small_corpus_plan(), cache=tmp_path, resume=True)
        stats = last_run_stats()
        assert stats.executed == 0
        assert stats.cache_hits == 4
        for key in cold:
            assert warm[key].rows == cold[key].rows

    def test_resumed_run_matches_uncached_run(self, tmp_path):
        repro.run(small_corpus_plan(), cache=tmp_path)
        resumed = repro.run(small_corpus_plan(), cache=tmp_path, resume=True)
        fresh = repro.run(small_corpus_plan())
        for key in fresh:
            assert resumed[key].rows == fresh[key].rows


class TestAdversarialResume:
    def test_payload_trials_hit_the_cache(self, tmp_path):
        # 1 lemma8 depth + 2 mtf depths = 3 payloads; theorem7 runs in the
        # parent process and never touches the store
        cold = repro.run(small_adversarial_plan(), cache=tmp_path)
        stats = last_run_stats()
        assert stats.executed == 3
        assert stats.stored == 3

        warm = repro.run(small_adversarial_plan(), cache=tmp_path, resume=True)
        stats = last_run_stats()
        assert stats.executed == 0
        assert stats.cache_hits == 3
        for key in cold:
            assert warm[key].rows == cold[key].rows

    def test_different_shape_does_not_collide_in_the_store(self, tmp_path):
        repro.run(small_adversarial_plan(), cache=tmp_path)
        repro.run(
            small_adversarial_plan(lemma8_requests=250),
            cache=tmp_path,
            resume=True,
        )
        stats = last_run_stats()
        # the lemma8 payload changed (n_requests), the mtf payloads did not
        assert stats.executed == 1
        assert stats.cache_hits == 2
