"""Checkpoint/resume: crash-safe campaigns that pick up where they stopped.

The resume contract: ``repro.run(plan, cache=..., resume=True)`` executes
only the trials whose checkpoint entry is missing (asserted via the
execution counters), produces output byte-identical to an uninterrupted run,
treats corrupted entries as misses, and refuses to "resume" with no store
anywhere to resume from.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.exceptions import PlanError
from repro.network.traffic import TrafficSpec
from repro.plans import (
    NetworkPlan,
    RunConfig,
    TrialPlan,
    last_run_stats,
    plan_with_overrides,
)
from repro.resilience import FaultSpec, ResultStore
from repro.resilience.faults import FAULT_SPEC_ENV
from repro.exceptions import FaultInjectionError
from repro.workloads.spec import WorkloadSpec


def small_plan(**config_kwargs) -> TrialPlan:
    config_kwargs.setdefault("n_requests", 100)
    config_kwargs.setdefault("n_trials", 2)
    config_kwargs.setdefault("base_seed", 3)
    return TrialPlan(
        name="resume-test",
        n_nodes=31,
        workload=WorkloadSpec.create("uniform", n_elements=31),
        algorithms=("rotor-push", "move-half"),
        config=RunConfig(**config_kwargs),
    )


def network_plan(**config_kwargs) -> NetworkPlan:
    config_kwargs.setdefault("n_requests", 40)
    config_kwargs.setdefault("n_trials", 2)
    config_kwargs.setdefault("base_seed", 7)
    return NetworkPlan(
        name="resume-net",
        traffic=TrafficSpec.create(
            31,
            {
                source: WorkloadSpec.create("uniform", n_elements=31)
                for source in range(3)
            },
        ),
        algorithm="rotor-push",
        config=RunConfig(**config_kwargs),
    )


class TestResume:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        plan = small_plan()
        cold = repro.run(plan, cache=tmp_path)
        stats = last_run_stats()
        assert stats.executed == 4 and stats.stored == 4 and stats.cache_hits == 0
        warm = repro.run(plan, cache=tmp_path, resume=True)
        stats = last_run_stats()
        assert stats.executed == 0 and stats.cache_hits == 4
        assert warm.rows == cold.rows

    def test_without_resume_the_store_is_write_only(self, tmp_path):
        plan = small_plan()
        repro.run(plan, cache=tmp_path)
        repro.run(plan, cache=tmp_path)  # resume not requested: recompute
        stats = last_run_stats()
        assert stats.executed == 4 and stats.cache_hits == 0

    def test_cache_dir_in_config_is_honoured(self, tmp_path):
        plan = small_plan(cache_dir=str(tmp_path / "store"))
        cold = repro.run(plan)
        assert len(ResultStore(tmp_path / "store")) == 4
        warm = repro.run(plan, resume=True)
        stats = last_run_stats()
        assert stats.executed == 0 and stats.cache_hits == 4
        assert warm.rows == cold.rows

    def test_resume_without_any_store_is_refused(self):
        with pytest.raises(PlanError, match="cache"):
            repro.run(small_plan(), resume=True)

    def test_interrupted_run_resumes_only_missing_trials(
        self, tmp_path, monkeypatch
    ):
        """Interrupt a campaign halfway (a payload that keeps failing), then
        resume: only the missing trials execute, and the merged output equals
        an uninterrupted run, byte for byte."""
        plan = small_plan()
        uninterrupted = repro.run(plan)
        # trial 1 keeps failing -> the run dies after trial 0 persisted
        spec = FaultSpec(
            mode="exception", trials=(1,), arm_dir=str(tmp_path), max_triggers=100
        )
        monkeypatch.setenv(FAULT_SPEC_ENV, json.dumps(spec.to_dict()))
        store_dir = tmp_path / "store"
        with pytest.raises(FaultInjectionError):
            repro.run(
                plan_with_overrides(plan, max_retries=0), cache=store_dir
            )
        monkeypatch.delenv(FAULT_SPEC_ENV)
        survivors = len(ResultStore(store_dir))
        assert 0 < survivors < 4  # partial progress persisted
        resumed = repro.run(plan, cache=store_dir, resume=True)
        stats = last_run_stats()
        assert stats.cache_hits == survivors
        assert stats.executed == 4 - survivors
        assert resumed.rows == uninterrupted.rows

    def test_corrupted_entry_is_recomputed_not_fatal(self, tmp_path):
        plan = small_plan()
        cold = repro.run(plan, cache=tmp_path)
        store = ResultStore(tmp_path)
        victim = store.keys()[0]
        store.path_for(victim).write_text("not a checkpoint entry")
        warm = repro.run(plan, cache=tmp_path, resume=True)
        stats = last_run_stats()
        assert stats.corrupt_entries == 1
        assert stats.executed == 1 and stats.cache_hits == 3
        assert warm.rows == cold.rows
        # the re-run healed the entry
        assert store.get(victim) is not None

    def test_extended_campaign_reuses_shared_prefix(self, tmp_path):
        """Growing n_trials 2 -> 4 must re-use every trial-0/1 entry: keys
        are per-payload content, not per-plan."""
        repro.run(small_plan(n_trials=2), cache=tmp_path)
        bigger = small_plan(n_trials=4)
        direct = repro.run(bigger)
        resumed = repro.run(bigger, cache=tmp_path, resume=True)
        stats = last_run_stats()
        assert stats.cache_hits == 4  # 2 trials x 2 algorithms already stored
        assert stats.executed == 4  # only the two new trials ran
        assert resumed.rows == direct.rows

    def test_hits_survive_jobs_and_backend_changes(self, tmp_path):
        """Entries written under one throughput configuration are valid hits
        under every other (bit-identity makes them interchangeable)."""
        plan = small_plan()
        cold = repro.run(plan, cache=tmp_path)
        warm = repro.run(
            plan_with_overrides(plan, n_jobs=4, backend="python", chunk_size=32),
            cache=tmp_path,
            resume=True,
        )
        stats = last_run_stats()
        assert stats.executed == 0 and stats.cache_hits == 4
        assert warm.rows == cold.rows

    def test_network_plan_resumes(self, tmp_path):
        plan = network_plan()
        cold = repro.run(plan, cache=tmp_path)
        stats = last_run_stats()
        assert stats.executed == 2 and stats.stored == 2
        warm = repro.run(plan, cache=tmp_path, resume=True)
        stats = last_run_stats()
        assert stats.executed == 0 and stats.cache_hits == 2
        assert warm.rows == cold.rows
