"""Plans through the distributed executor: byte-identity, kills, warm resume.

The acceptance pins of the distributed-executor PR at the plan level:

* every plan family (trial, network, traffic sweep) run through
  ``repro.run(plan, executor="tcp://...")`` produces exactly the serial
  table — including runs where a worker daemon is killed mid-campaign
  (``worker_crash``, real subprocess workers) or a lease expires
  (``worker_hang``);
* a warm-cache resume through the remote executor re-executes zero
  payloads: the whole campaign is served from the checkpoint store and the
  fleet is never even contacted.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.network.traffic import TrafficSpec
from repro.plans import (
    NetworkPlan,
    RunConfig,
    TrafficSweepPlan,
    TrialPlan,
    dumps,
    last_run_stats,
    loads,
)
from repro.dist.worker import WorkerServer
from repro.resilience import FaultSpec
from repro.resilience.faults import FAULT_SPEC_ENV
from repro.workloads.spec import WorkloadSpec

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def trial_plan(**config_kwargs) -> TrialPlan:
    config_kwargs.setdefault("n_requests", 120)
    config_kwargs.setdefault("n_trials", 2)
    config_kwargs.setdefault("base_seed", 5)
    return TrialPlan(
        name="dist-trial",
        n_nodes=31,
        workload=WorkloadSpec.create(
            "combined-locality",
            n_elements=31,
            zipf_exponent=1.4,
            repeat_probability=0.4,
        ),
        algorithms=("rotor-push", "random-push"),
        config=RunConfig(**config_kwargs),
    )


def network_plan(**config_kwargs) -> NetworkPlan:
    config_kwargs.setdefault("n_requests", 60)
    config_kwargs.setdefault("n_trials", 2)
    return NetworkPlan(
        name="dist-network",
        traffic=TrafficSpec.create(
            31,
            {
                source: WorkloadSpec.create("zipf", n_elements=31, exponent=1.6)
                for source in range(2)
            },
        ),
        algorithm="rotor-push",
        config=RunConfig(**config_kwargs),
    )


def traffic_sweep_plan(**config_kwargs) -> TrafficSweepPlan:
    config_kwargs.setdefault("n_requests", 40)
    config_kwargs.setdefault("n_trials", 1)
    config_kwargs.setdefault("base_seed", 5)
    return TrafficSweepPlan(
        name="dist-sweep",
        traffic=TrafficSpec.create(
            31,
            {
                source: WorkloadSpec.create("zipf", n_elements=31, exponent=1.6)
                for source in range(2)
            },
        ),
        algorithms=("rotor-push",),
        points=({"k": 1}, {"k": 3}),
        bind={"k": "n_sources"},
        config=RunConfig(**config_kwargs),
    )


@pytest.fixture()
def fleet():
    workers = [WorkerServer().start(), WorkerServer().start()]
    yield workers
    for worker in workers:
        worker.stop()


def fleet_address(workers, options: str = "") -> str:
    hosts = ",".join(f"{w.host}:{w.port}" for w in workers)
    return f"tcp://{hosts}{options}"


class TestByteIdentity:
    @pytest.mark.parametrize(
        "make_plan", [trial_plan, network_plan, traffic_sweep_plan]
    )
    def test_every_plan_family_matches_serial(self, fleet, make_plan):
        serial = repro.run(make_plan())
        distributed = repro.run(make_plan(), executor=fleet_address(fleet))
        assert distributed.rows == serial.rows
        stats = last_run_stats()
        assert stats.remote_executed == stats.executed > 0
        assert not stats.degraded_remote

    def test_executor_in_the_plan_document_roundtrips(self, fleet):
        plan = trial_plan(executor=fleet_address(fleet))
        rebuilt = loads(dumps(plan))
        assert rebuilt.config.executor == fleet_address(fleet)
        assert repro.run(rebuilt).rows == repro.run(trial_plan()).rows

    def test_lease_expiry_mid_plan_stays_identical(self, fleet, tmp_path):
        serial = repro.run(trial_plan())
        fault = FaultSpec(
            mode="worker_hang",
            trials=(0,),
            arm_dir=str(tmp_path),
            max_triggers=1,
            hang_seconds=2.0,
        )
        os.environ[FAULT_SPEC_ENV] = json.dumps(fault.to_dict())
        try:
            table = repro.run(
                trial_plan(),
                executor=fleet_address(fleet, "?lease=0.5&heartbeat=0.1"),
            )
        finally:
            del os.environ[FAULT_SPEC_ENV]
        assert table.rows == serial.rows
        assert last_run_stats().lease_expiries >= 1


def spawn_worker() -> subprocess.Popen:
    """Start a real ``repro worker`` daemon subprocess on an ephemeral port."""
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--listen", "tcp://127.0.0.1:0"],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = process.stdout.readline()
    assert line.startswith("worker listening on "), line
    process.address = line.split()[-1]
    return process


class TestSubprocessWorkers:
    def test_worker_kill_mid_run_stays_identical(self, tmp_path):
        """The ISSUE's acceptance shape: one worker daemon dies mid-campaign
        (a real ``os._exit`` in a real subprocess); the survivor absorbs the
        requeued payload and the table is byte-identical to serial."""
        serial = repro.run(trial_plan())
        # trial 0 has one armed payload per algorithm (independent trigger
        # budgets), so up to two daemons die — a three-worker fleet keeps a
        # survivor to absorb the requeued payloads
        workers = [spawn_worker(), spawn_worker(), spawn_worker()]
        fault = FaultSpec(
            mode="worker_crash", trials=(0,), arm_dir=str(tmp_path), max_triggers=1
        )
        os.environ[FAULT_SPEC_ENV] = json.dumps(fault.to_dict())
        try:
            hosts = ",".join(w.address[len("tcp://") :] for w in workers)
            table = repro.run(trial_plan(), executor=f"tcp://{hosts}")
        finally:
            del os.environ[FAULT_SPEC_ENV]
            for worker in workers:
                worker.terminate()
                worker.wait(timeout=10)
                worker.stdout.close()
        assert table.rows == serial.rows
        stats = last_run_stats()
        assert stats.workers_lost >= 1
        assert not stats.degraded_remote


class TestWarmResume:
    @pytest.mark.parametrize("make_plan", [trial_plan, network_plan])
    def test_remote_resume_reexecutes_nothing(self, fleet, make_plan, tmp_path):
        cache = tmp_path / "store"
        address = fleet_address(fleet)
        first = repro.run(make_plan(), cache=cache, executor=address)
        stats = last_run_stats()
        assert stats.remote_executed == stats.stored > 0

        # warm resume: every payload is served from the checkpoint store;
        # the fleet is never contacted (zero new sessions)
        sessions_before = sum(worker.sessions for worker in fleet)
        second = repro.run(
            make_plan(), cache=cache, resume=True, executor=address
        )
        assert second.rows == first.rows
        stats = last_run_stats()
        assert stats.executed == 0
        assert stats.remote_executed == 0
        assert stats.cache_hits > 0
        assert sum(worker.sessions for worker in fleet) == sessions_before

    def test_cold_local_run_matches_remote_cached_run(self, fleet, tmp_path):
        """Cache entries written by remote workers are valid hits for local
        re-runs (payload keys exclude the executor, like every throughput
        knob) — and vice versa the tables agree byte for byte."""
        cache = tmp_path / "store"
        remote = repro.run(trial_plan(), cache=cache, executor=fleet_address(fleet))
        local = repro.run(trial_plan(), cache=cache, resume=True)
        assert local.rows == remote.rows
        assert last_run_stats().cache_hits > 0
        assert last_run_stats().executed == 0
