"""Coordinator scheduling under failure: leases, loss, duplicates, ladder.

Pins the placement-under-failure semantics of :mod:`repro.dist.coordinator`
against in-thread :class:`~repro.dist.worker.WorkerServer` daemons: a
healthy fleet produces exactly the serial results, a hung worker expires its
lease and loses the payload to a peer, a partitioned worker leaves the fleet
without losing work, transient execution errors retry under the seeded
policy, and an empty or unreachable fleet degrades to local execution —
byte-identically, because results are pure functions of payload content.
"""

from __future__ import annotations

import socket

import pytest

from repro.algorithms.registry import AlgorithmSpec
from repro.dist.coordinator import DistributedExecutor, run_distributed
from repro.dist.protocol import ExecutorSpec, ProtocolError
from repro.dist.worker import WorkerServer, parse_listen_address
from repro.exceptions import ExperimentError
from repro.resilience import FaultSpec, ResilienceStats, RetryPolicy
from repro.resilience.store import payload_key, result_to_dict
from repro.sim.runner import SpecSource, TrialPayload, _execute_trial
from repro.workloads.spec import WorkloadSpec

FAST_RETRY = RetryPolicy(max_retries=2, backoff_base=0.0)


def make_payloads(n: int = 4, fault=None):
    spec = WorkloadSpec.create(
        "combined-locality", n_elements=15, zipf_exponent=1.4, repeat_probability=0.4
    )
    return [
        TrialPayload(
            algorithm=AlgorithmSpec.coerce("rotor-push"),
            source=SpecSource(spec.with_seed(trial), n_requests=80, chunk_size=32),
            n_nodes=15,
            placement_seed=100 + trial,
            algorithm_seed=200 + trial,
            keep_records=False,
            trial=trial,
            fault=fault,
        )
        for trial in range(n)
    ]


def serial_documents(payloads):
    return [result_to_dict(_execute_trial(payload)) for payload in payloads]


def dead_address() -> str:
    """An endpoint nothing listens on (bound once, then released)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"127.0.0.1:{port}"


@pytest.fixture()
def fleet():
    workers = [WorkerServer().start(), WorkerServer().start()]
    yield workers
    for worker in workers:
        worker.stop()


def fleet_address(workers, options: str = "") -> str:
    hosts = ",".join(f"{w.host}:{w.port}" for w in workers)
    return f"tcp://{hosts}{options}"


class TestHealthyFleet:
    def test_results_match_serial_in_payload_order(self, fleet):
        payloads = make_payloads(6)
        stats = ResilienceStats()
        seen = []
        results = run_distributed(
            payloads,
            fleet_address(fleet),
            retry=FAST_RETRY,
            on_result=lambda index, result: seen.append(index),
            stats=stats,
        )
        assert [result_to_dict(r) for r in results] == serial_documents(payloads)
        assert sorted(seen) == list(range(6))
        assert stats.remote_executed == 6
        assert stats.executed == 6
        assert not stats.degraded_remote
        assert sum(worker.completed for worker in fleet) == 6

    def test_empty_payload_list_never_connects(self):
        stats = ResilienceStats()
        assert run_distributed([], f"tcp://{dead_address()}", stats=stats) == []
        assert stats.workers_lost == 0

    def test_workers_survive_across_runs(self, fleet):
        payloads = make_payloads(2)
        expected = serial_documents(payloads)
        for _ in range(2):
            results = run_distributed(payloads, fleet_address(fleet), retry=FAST_RETRY)
            assert [result_to_dict(r) for r in results] == expected
        assert all(worker.sessions >= 2 for worker in fleet)


class TestDegradationLadder:
    def test_unreachable_fleet_degrades_to_local(self):
        payloads = make_payloads(3)
        stats = ResilienceStats()
        address = f"tcp://{dead_address()},{dead_address()}"
        with pytest.warns(RuntimeWarning, match="degrading to local"):
            results = run_distributed(
                payloads, address, retry=FAST_RETRY, stats=stats
            )
        assert [result_to_dict(r) for r in results] == serial_documents(payloads)
        assert stats.degraded_remote
        assert stats.workers_lost == 2
        assert stats.remote_executed == 0
        assert stats.executed == 3

    def test_partial_fleet_needs_no_degradation(self, fleet):
        payloads = make_payloads(4)
        stats = ResilienceStats()
        address = f"tcp://{fleet[0].host}:{fleet[0].port},{dead_address()}"
        results = run_distributed(payloads, address, retry=FAST_RETRY, stats=stats)
        assert [result_to_dict(r) for r in results] == serial_documents(payloads)
        assert stats.workers_lost == 1
        assert not stats.degraded_remote
        assert stats.remote_executed == 4


class TestWorkerFaults:
    def test_hang_expires_the_lease_and_requeues(self, fleet, tmp_path):
        fault = FaultSpec(
            mode="worker_hang",
            trials=(0,),
            arm_dir=str(tmp_path),
            max_triggers=1,
            hang_seconds=2.0,
        )
        payloads = make_payloads(4, fault=fault)
        stats = ResilienceStats()
        address = fleet_address(fleet, "?lease=0.5&heartbeat=0.1")
        results = run_distributed(payloads, address, retry=FAST_RETRY, stats=stats)
        assert [result_to_dict(r) for r in results] == serial_documents(
            make_payloads(4)
        )
        assert stats.lease_expiries >= 1
        assert stats.workers_lost >= 1
        assert not stats.degraded_remote

    def test_partition_drops_the_worker_but_not_the_work(self, fleet, tmp_path):
        fault = FaultSpec(
            mode="worker_partition", trials=(0,), arm_dir=str(tmp_path), max_triggers=1
        )
        payloads = make_payloads(4, fault=fault)
        stats = ResilienceStats()
        results = run_distributed(
            payloads, fleet_address(fleet), retry=FAST_RETRY, stats=stats
        )
        assert [result_to_dict(r) for r in results] == serial_documents(
            make_payloads(4)
        )
        assert stats.workers_lost >= 1
        assert stats.remote_executed == 4

    def test_transient_execution_error_retries(self, fleet, tmp_path):
        fault = FaultSpec(
            mode="exception", trials=(0,), arm_dir=str(tmp_path), max_triggers=1
        )
        payloads = make_payloads(3, fault=fault)
        stats = ResilienceStats()
        results = run_distributed(
            payloads, fleet_address(fleet), retry=FAST_RETRY, stats=stats
        )
        # the retried payload re-runs from its pristine seeded state, so the
        # output is the fault-free output (fault field excluded from results)
        assert [result_to_dict(r) for r in results] == serial_documents(
            make_payloads(3)
        )
        assert stats.retries >= 1

    def test_exhausted_error_budget_fails_the_run(self, fleet, tmp_path):
        fault = FaultSpec(
            mode="exception", trials=(0,), arm_dir=str(tmp_path), max_triggers=100
        )
        payloads = make_payloads(2, fault=fault)
        with pytest.raises(ExperimentError, match="after 1 retries"):
            run_distributed(
                payloads,
                fleet_address(fleet),
                retry=RetryPolicy(max_retries=1, backoff_base=0.0),
            )


class TestVerificationAndDuplicates:
    def _primed_executor(self, payloads):
        executor = DistributedExecutor(ExecutorSpec.parse("tcp://unused:1"))
        executor._payloads = payloads
        executor._results = [None] * len(payloads)
        executor._finished = [False] * len(payloads)
        executor._keys = [payload_key(payload) for payload in payloads]
        return executor

    def test_content_key_mismatch_is_refused(self):
        payloads = make_payloads(1)
        executor = self._primed_executor(payloads)
        result = _execute_trial(payloads[0])
        with pytest.raises(ProtocolError, match="refusing the result"):
            executor._record(
                0,
                1,
                {"type": "result", "key": "bogus", "result": result_to_dict(result)},
            )

    def test_duplicate_completion_resolves_idempotently(self):
        payloads = make_payloads(1)
        executor = self._primed_executor(payloads)
        executor.stats = ResilienceStats()
        result = _execute_trial(payloads[0])
        frame = {
            "type": "result",
            "key": payload_key(payloads[0]),
            "result": result_to_dict(result),
        }
        assert executor._record(0, 1, frame)
        # a lease race delivers the same payload again: dropped, counted
        assert not executor._record(0, 2, frame)
        assert executor.stats.duplicate_results == 1
        assert executor.stats.remote_executed == 1
        assert result_to_dict(executor._results[0]) == result_to_dict(result)


class TestListenAddress:
    def test_parse_listen_address(self):
        assert parse_listen_address("tcp://0.0.0.0:7777") == ("0.0.0.0", 7777)
        with pytest.raises(ExperimentError, match="tcp://HOST:PORT"):
            parse_listen_address("0.0.0.0:7777")
        with pytest.raises(ExperimentError, match="tcp://HOST:PORT"):
            parse_listen_address("tcp://nohost")
