"""Wire protocol of the distributed executor: frames, codecs, addresses.

The contract the coordinator and worker daemons both rely on: frames
round-trip byte-exactly over a socket, every payload shape the runners build
(spec / sequence / traffic / adversary sources, with or without a fault)
survives the JSON codec with its content key intact, and executor address
strings parse with the repo's usual eager-validation error shapes.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.algorithms.registry import AlgorithmSpec
from repro.dist.protocol import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_LEASE_TIMEOUT,
    ExecutorSpec,
    ProtocolError,
    check_executor,
    payload_from_dict,
    payload_to_dict,
    recv_frame,
    send_frame,
)
from repro.exceptions import ExperimentError
from repro.network.traffic import TrafficSpec
from repro.resilience import FaultSpec
from repro.resilience.store import payload_key
from repro.sim.runner import (
    AdversarySource,
    SequenceSource,
    SpecSource,
    TrafficSource,
    TrialPayload,
)
from repro.workloads.adversarial import AdversarySpec
from repro.workloads.spec import WorkloadSpec


class TestFraming:
    def test_roundtrip_over_a_socketpair(self):
        left, right = socket.socketpair()
        try:
            message = {"type": "lease", "lease_id": 3, "payload": {"x": [1, 2]}}
            send_frame(left, message)
            send_frame(left, {"type": "shutdown"})
            assert recv_frame(right) == message
            assert recv_frame(right) == {"type": "shutdown"}
        finally:
            left.close()
            right.close()

    def test_eof_mid_frame_raises_connection_error(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\x00\x00\x00\x00\x00\x00\x00\x10partial")
            left.close()
            with pytest.raises(ConnectionError, match="mid-frame"):
                recv_frame(right)
        finally:
            right.close()

    def test_oversized_length_prefix_is_refused(self):
        left, right = socket.socketpair()
        try:
            left.sendall((1 << 40).to_bytes(8, "big"))
            with pytest.raises(ProtocolError, match="cap"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_untyped_message_is_refused(self):
        left, right = socket.socketpair()
        try:
            body = json.dumps([1, 2, 3]).encode()
            left.sendall(len(body).to_bytes(8, "big") + body)
            with pytest.raises(ProtocolError, match="not a protocol message"):
                recv_frame(right)
        finally:
            left.close()
            right.close()


def _payload(source, **kwargs) -> TrialPayload:
    fields = dict(
        algorithm=AlgorithmSpec.coerce("rotor-push"),
        source=source,
        n_nodes=15,
        placement_seed=11,
        algorithm_seed=12,
        keep_records=False,
        trial=0,
        metadata={"point": 3},
        backend="python",
    )
    fields.update(kwargs)
    return TrialPayload(**fields)


class TestPayloadCodec:
    @pytest.fixture()
    def sources(self, tmp_path):
        spec = WorkloadSpec.create("uniform", n_elements=15, seed=7)
        return [
            SpecSource(spec, n_requests=100, chunk_size=32, shared=True),
            SequenceSource(sequence=(1, 2, 3, 4)),
            TrafficSource(
                traffic=TrafficSpec.create(
                    n_nodes=15, source_workloads={0: spec, 2: spec}, seed=5
                ),
                requests_per_source=50,
                chunk_size=16,
            ),
            AdversarySource(
                adversary=AdversarySpec.create(
                    "mtf-lower-bound", n_elements=15, n_nodes=15
                ),
                n_requests=60,
            ),
        ]

    def test_every_source_kind_roundtrips(self, sources):
        for source in sources:
            payload = _payload(source)
            document = json.loads(json.dumps(payload_to_dict(payload)))
            rebuilt = payload_from_dict(document)
            assert rebuilt == payload
            # the content key — what the worker stamps into result frames —
            # survives the wire format bit-exactly
            assert payload_key(rebuilt) == payload_key(payload)

    def test_fault_spec_rides_along(self, sources, tmp_path):
        fault = FaultSpec(
            mode="worker_crash", trials=(0,), arm_dir=str(tmp_path), seed=3
        )
        payload = _payload(sources[0], fault=fault)
        rebuilt = payload_from_dict(payload_to_dict(payload))
        assert rebuilt.fault == fault

    def test_unknown_source_kind_is_refused(self, sources):
        document = payload_to_dict(_payload(sources[0]))
        document["source"]["type"] = "carrier-pigeon"
        with pytest.raises(ProtocolError, match="carrier-pigeon"):
            payload_from_dict(document)
        with pytest.raises(ProtocolError, match="payload document"):
            payload_from_dict({"algorithm": {}})
        with pytest.raises(ProtocolError, match="not a payload document"):
            payload_from_dict("nope")


class TestExecutorSpec:
    def test_single_and_multi_worker_addresses(self):
        spec = ExecutorSpec.parse("tcp://10.0.0.1:7777")
        assert spec.workers == (("10.0.0.1", 7777),)
        assert spec.lease_timeout == DEFAULT_LEASE_TIMEOUT
        assert spec.heartbeat_interval == DEFAULT_HEARTBEAT_INTERVAL
        fleet = ExecutorSpec.parse("tcp://a:1,b:2,c:3")
        assert fleet.workers == (("a", 1), ("b", 2), ("c", 3))

    def test_lease_and_heartbeat_options(self):
        spec = ExecutorSpec.parse("tcp://h:1?lease=2.5&heartbeat=0.5")
        assert spec.lease_timeout == 2.5
        assert spec.heartbeat_interval == 0.5

    def test_bad_addresses_fail_eagerly(self):
        with pytest.raises(ExperimentError, match="executor scheme"):
            ExecutorSpec.parse("http://h:1")
        with pytest.raises(ExperimentError, match="HOST:PORT"):
            ExecutorSpec.parse("tcp://h")
        with pytest.raises(ExperimentError, match="HOST:PORT"):
            ExecutorSpec.parse("tcp://h:1,")
        with pytest.raises(ExperimentError, match="unknown executor options"):
            ExecutorSpec.parse("tcp://h:1?jitter=1")
        with pytest.raises(ExperimentError, match="not a number"):
            ExecutorSpec.parse("tcp://h:1?lease=soon")
        with pytest.raises(ExperimentError, match="lease timeout"):
            ExecutorSpec.parse("tcp://h:1?lease=0")
        with pytest.raises(ExperimentError, match="not an executor address"):
            ExecutorSpec.parse("")

    def test_check_executor_passes_none_through(self):
        assert check_executor(None) is None
        assert check_executor("tcp://h:1") == "tcp://h:1"
