"""End-to-end integration tests across the whole library.

These tests wire several subsystems together the way a downstream user would:
workload -> algorithm -> analysis -> experiment reporting, plus consistency
checks between independent implementations of the same quantity.
"""

from __future__ import annotations

import math

import pytest

import repro
from repro import (
    CombinedLocalityWorkload,
    MultiSourceNetwork,
    PAPER_ALGORITHMS,
    TemporalWorkload,
    UniformWorkload,
    ZipfWorkload,
    make_algorithm,
    simulate,
    working_set_bound,
)
from repro.analysis.bounds import compute_lower_bounds, static_optimum_cost
from repro.analysis.working_set import ranks_of_sequence
from repro.network import trace_from_workloads
from repro.sim.runner import compare_algorithms
from repro.workloads import MarkovWorkload


class TestPublicApi:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in ("RotorPush", "RandomPush", "MoveHalf", "MaxPush", "TreeNetwork"):
            assert hasattr(repro, name)

    def test_quickstart_snippet_from_docstring(self):
        workload = CombinedLocalityWorkload(
            n_elements=255, zipf_exponent=1.6, repeat_probability=0.5, seed=1
        )
        algorithm = make_algorithm("rotor-push", n_nodes=255, placement_seed=1)
        result = algorithm.run(workload.generate(2_000))
        assert result.average_total_cost > 0


class TestPaperFindingsEndToEnd:
    """Each test reproduces one headline observation of the paper at small scale."""

    def test_rotor_and_random_push_are_nearly_identical_on_uniform_data(self):
        sequence = UniformWorkload(511, seed=1).generate(6_000)
        rotor = simulate("rotor-push", sequence, n_nodes=511, placement_seed=2)
        random_push = simulate("random-push", sequence, n_nodes=511, placement_seed=2, seed=3)
        assert rotor.average_total_cost == pytest.approx(
            random_push.average_total_cost, rel=0.05
        )

    def test_self_adjusting_trees_exploit_temporal_locality(self):
        aggregated = compare_algorithms(
            PAPER_ALGORITHMS,
            lambda seed: TemporalWorkload(255, 0.9, seed=seed),
            n_nodes=255,
            n_requests=4_000,
            n_trials=2,
        )
        assert aggregated["rotor-push"].mean_total_cost < aggregated["static-oblivious"].mean_total_cost
        assert aggregated["rotor-push"].mean_total_cost < aggregated["static-opt"].mean_total_cost
        # Max-Push pays the largest adjustment cost (Figure 3's dominant bar).
        assert aggregated["max-push"].mean_adjustment_cost == max(
            aggregated[name].mean_adjustment_cost for name in PAPER_ALGORITHMS
        )

    def test_static_opt_wins_under_pure_spatial_locality(self):
        aggregated = compare_algorithms(
            PAPER_ALGORITHMS,
            lambda seed: ZipfWorkload(255, 2.2, seed=seed),
            n_nodes=255,
            n_requests=4_000,
            n_trials=2,
        )
        best = min(aggregated.values(), key=lambda outcome: outcome.mean_total_cost)
        assert best.algorithm == "static-opt"

    def test_every_algorithm_beats_the_trivial_depth_bound_on_skewed_input(self):
        workload = ZipfWorkload(255, 2.2, seed=5)
        sequence = workload.generate(4_000)
        depth = 7
        for name in PAPER_ALGORITHMS:
            result = simulate(name, sequence, n_nodes=255, placement_seed=3, seed=4)
            assert result.average_access_cost <= depth + 1

    def test_costs_respect_lower_bounds(self):
        workload = CombinedLocalityWorkload(127, 1.6, 0.6, seed=11)
        sequence = workload.generate(3_000)
        bounds = compute_lower_bounds(127, sequence)
        for name in PAPER_ALGORITHMS:
            result = simulate(name, sequence, n_nodes=127, placement_seed=7, seed=8)
            assert result.total_cost >= bounds.trivial
            assert result.total_access_cost >= working_set_bound(sequence) / 4

    def test_static_opt_cost_formula_matches_simulation(self):
        sequence = ZipfWorkload(63, 1.8, seed=2).generate(2_000)
        analytic = static_optimum_cost(63, sequence)
        simulated = simulate("static-opt", sequence, n_nodes=63, placement_seed=1)
        assert simulated.total_access_cost == pytest.approx(analytic)

    def test_max_push_access_cost_tracks_working_set_ranks(self):
        """Strict-MRU access costs stay logarithmic in the rank (Table 1, WS property)."""
        sequence = CombinedLocalityWorkload(127, 1.5, 0.6, seed=9).generate(3_000)
        result = simulate("max-push", sequence, n_nodes=127, placement_seed=1, keep_records=True)
        ranks = ranks_of_sequence(sequence, first_access="universe", universe_size=127)
        violations = sum(
            1
            for record, rank in zip(result.per_request, ranks)
            if record.access_cost > math.log2(max(rank, 2)) + 2
        )
        assert violations / len(sequence) < 0.02

    def test_multi_source_network_end_to_end(self):
        n_nodes = 32
        network = MultiSourceNetwork(n_nodes=n_nodes, sources=[0, 1, 2], algorithm="rotor-push")
        workloads = {
            source: MarkovWorkload(
                n_nodes, n_neighbours=3, self_loop=0.6, neighbour_probability=0.3, seed=source
            )
            for source in (0, 1, 2)
        }
        trace = trace_from_workloads(n_nodes, workloads, requests_per_source=300, interleave_seed=5)
        summary = network.serve_trace(trace)
        assert summary["n_requests"] == 900
        assert summary["average_total_cost"] > 0
        per_source = network.per_source_summary()
        assert set(per_source) == {0, 1, 2}
        assert sum(s["n_requests"] for s in per_source.values()) == 900
