"""Tests for the experiment harnesses (Q1-Q5, Table 1) at tiny scale.

These tests verify that each experiment runs end to end, produces the expected
table structure, and - where statistically robust even at tiny scale -
reproduces the qualitative finding of the corresponding figure of the paper.
"""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import (
    SCALES,
    get_scale,
    run_mtf_lower_bound,
    run_potential_check,
    run_q1_temporal,
    run_q2,
    run_q3,
    run_q4_histogram,
    run_q4_wireframe,
    run_q5_complexity_map,
    run_q5_costs,
    run_table1,
    run_working_set_violation,
    run_ws_bound_ratios,
)
from repro.experiments.config import ExperimentScale
from repro.experiments.q1_network_size import benefit_by_size
from repro.experiments.q2_temporal import sequence_entropies, series_for_plot
from repro.experiments.q4_combined import wireframe_grid

# A miniature scale so that the whole experiment suite runs in seconds.
SCALES["unit"] = ExperimentScale(
    name="unit",
    n_nodes=127,
    n_requests=1_200,
    n_trials=2,
    q1_sizes=[31, 127],
    temporal_probabilities=[0.0, 0.9],
    zipf_exponents=[1.001, 2.2],
    q4_probabilities=[0.0, 0.9],
    q4_exponents=[1.001, 2.2],
    corpus_scale=0.03,
)


class TestConfig:
    def test_known_scales_exist(self):
        for name in ("tiny", "small", "default", "paper"):
            scale = get_scale(name)
            assert scale.n_nodes > 0

    def test_paper_scale_matches_paper_parameters(self):
        paper = get_scale("paper")
        assert paper.n_nodes == 65_535
        assert paper.n_requests == 1_000_000
        assert paper.n_trials == 10
        assert paper.temporal_probabilities == [0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9]
        assert paper.zipf_exponents == [1.001, 1.3, 1.6, 1.9, 2.2]
        assert paper.q1_sizes[-1] == 65_535

    def test_unknown_scale_raises(self):
        with pytest.raises(ExperimentError):
            get_scale("galactic")


class TestQ1:
    def test_benefit_grows_with_tree_size(self):
        table = run_q1_temporal("unit")
        assert len(table) == 8  # 2 sizes x 4 self-adjusting algorithms
        rotor_benefit = benefit_by_size(table, "rotor-push")
        # More negative difference (bigger benefit) on the larger tree.
        assert rotor_benefit[-1] < rotor_benefit[0]

    def test_differences_are_relative_to_static_oblivious(self):
        table = run_q1_temporal("unit")
        for row in table.rows:
            assert row["difference"] == pytest.approx(
                row["mean_total_cost"] - row["baseline_total_cost"]
            )


class TestQ2:
    def test_table_shape(self):
        table = run_q2("unit")
        assert len(table) == 2 * 6  # 2 probabilities x 6 algorithms
        assert set(table.column("algorithm")) == {
            "rotor-push",
            "random-push",
            "move-half",
            "max-push",
            "static-oblivious",
            "static-opt",
        }

    def test_self_adjusting_algorithms_benefit_from_temporal_locality(self):
        table = run_q2("unit")
        series = series_for_plot(table)
        for algorithm in ("rotor-push", "random-push", "move-half", "max-push"):
            assert series[algorithm][-1] < series[algorithm][0]

    def test_rotor_beats_static_opt_at_high_p(self):
        table = run_q2("unit")
        series = series_for_plot(table)
        assert series["rotor-push"][-1] < series["static-opt"][-1]

    def test_static_costs_unaffected_by_p(self):
        table = run_q2("unit")
        series = series_for_plot(table, metric="mean_adjustment_cost")
        assert series["static-oblivious"] == [0.0, 0.0]
        assert series["static-opt"] == [0.0, 0.0]

    def test_entropies_decrease_with_p(self):
        entropies = sequence_entropies("unit")
        values = [entropies[p] for p in sorted(entropies)]
        assert values[-1] < values[0]


class TestQ3:
    def test_spatial_locality_helps_all_self_adjusting_algorithms(self):
        table = run_q3("unit")
        for algorithm in ("rotor-push", "random-push", "max-push"):
            rows = table.filter(algorithm=algorithm).rows
            by_exponent = sorted(rows, key=lambda row: row["a"])
            assert by_exponent[-1]["mean_total_cost"] < by_exponent[0]["mean_total_cost"]

    def test_static_opt_is_best_under_pure_spatial_locality(self):
        table = run_q3("unit")
        for exponent in (1.001, 2.2):
            rows = {row["algorithm"]: row["mean_total_cost"] for row in table.rows if row["a"] == exponent}
            assert rows["static-opt"] == min(rows.values())


class TestQ4:
    def test_wireframe_grid_shape(self):
        table = run_q4_wireframe("unit")
        probabilities, exponents, grid = wireframe_grid(table)
        assert probabilities == [0.0, 0.9]
        assert exponents == [1.001, 2.2]
        assert len(grid) == 2 and len(grid[0]) == 2

    def test_combined_locality_gives_largest_improvement(self):
        table = run_q4_wireframe("unit")
        _, _, grid = wireframe_grid(table)
        # Bottom-right corner (high p, high a) must improve on the no-locality corner.
        assert grid[1][1] < grid[0][0]

    def test_histogram_is_concentrated_around_zero(self):
        histogram, summary = run_q4_histogram("unit", n_sequences=2)
        assert abs(summary["mean_difference"]) < 0.5
        assert summary["max_abs_difference"] <= 10
        assert histogram.probability(0) > 0.5


class TestQ5:
    def test_complexity_map_rows(self):
        table = run_q5_complexity_map("unit")
        assert len(table) == 5
        for row in table.rows:
            assert 0.0 <= row["temporal_complexity"] <= 1.0
            assert 0.0 <= row["non_temporal_complexity"] <= 1.0

    def test_corpus_costs_table(self):
        table = run_q5_costs("unit", max_requests=800)
        assert len(table) == 5 * 6
        rotor_rows = table.filter(algorithm="rotor-push").rows
        static_rows = table.filter(algorithm="static-oblivious").rows
        # Rotor-Push access cost beats the oblivious tree on corpus data.
        assert sum(r["mean_access_cost"] for r in rotor_rows) < sum(
            r["mean_total_cost"] for r in static_rows
        )


class TestTable1AndAnalyticalChecks:
    def test_working_set_violation_grows_with_depth(self):
        results = run_working_set_violation([4, 7], requests_per_depth=1_200)
        assert results[0].working_set_limit == 9
        assert results[1].max_access_cost >= results[0].max_access_cost
        assert results[1].max_cost_to_log_rank_ratio > results[0].max_cost_to_log_rank_ratio

    def test_mtf_lower_bound_table(self):
        table = run_mtf_lower_bound([3, 5], cycles=10)
        rows = sorted(table.rows, key=lambda row: row["depth"])
        assert rows[0]["mean_access_cost"] < rows[1]["mean_access_cost"]
        assert rows[1]["mean_access_cost"] >= rows[1]["depth"]

    def test_ws_bound_ratios_are_bounded(self):
        table = run_ws_bound_ratios(n_nodes=127, n_requests=2_000)
        ratios = {row["algorithm"]: row["cost_to_ws_bound"] for row in table.rows}
        assert ratios["rotor-push"] < 12
        assert ratios["random-push"] < 16

    def test_potential_check_has_no_violations(self):
        summary = run_potential_check(depth=5, n_requests=800)
        assert summary["violations"] == 0.0
        assert summary["max_ratio"] <= 1.0 + 1e-9

    def test_table1_structure(self):
        table = run_table1(adversary_depths=[4, 6], n_nodes=127, n_requests=1_500)
        assert len(table) == 6
        by_algorithm = {row["algorithm"]: row for row in table.rows}
        assert by_algorithm["rotor-push"]["deterministic"] is True
        assert by_algorithm["random-push"]["deterministic"] is False
        assert by_algorithm["rotor-push"]["known_competitive_ratio"] == 12
        assert by_algorithm["random-push"]["known_competitive_ratio"] == 16
        assert by_algorithm["max-push"]["known_competitive_ratio"] == "open"
        # Rotor-Push's measured WS-property ratio exceeds Random-Push's: the
        # Lemma 8 construction only fools the deterministic rotor walk.
        assert (
            by_algorithm["rotor-push"]["ws_property_ratio"]
            > by_algorithm["random-push"]["ws_property_ratio"]
        )
        assert not math.isnan(by_algorithm["rotor-push"]["cost_to_ws_bound"])
