"""Scenario library plans: datacenter, adversarial, corpus, trace replay.

Pins the scenario-unification contract:

* the shipped golden plans equal their builders, document for document;
* the plan results are bit-identical to the former imperative scripts'
  computations (same constructions, same seeds), serial and parallel;
* a saved trace replays through a plan document (``trace_file`` spec) with
  the exact saved sequence.
"""

from __future__ import annotations

import pytest

import repro
from repro.algorithms import PAPER_ALGORITHMS
from repro.analysis.working_set import max_working_set_violation
from repro.experiments import (
    build_adversarial_plan,
    build_corpus_pipeline_plan,
    build_datacenter_plan,
    run_mtf_lower_bound,
)
from repro.network.topology import theoretical_degree_bound
from repro.plans import (
    RunConfig,
    TrialPlan,
    dumps,
    load_golden_plan,
    loads,
    plan_to_dict,
    plan_with_overrides,
)
from repro.sim.engine import simulate
from repro.workloads import RotorPushWorkingSetAdversary
from repro.workloads.corpus import synthetic_corpus_workloads
from repro.workloads.trace_io import load_trace_workload, save_trace


class TestGoldenPlans:
    @pytest.mark.parametrize(
        "name, builder",
        [
            ("datacenter", build_datacenter_plan),
            ("adversarial", build_adversarial_plan),
            ("corpus", build_corpus_pipeline_plan),
        ],
    )
    def test_golden_equals_builder(self, name, builder):
        assert plan_to_dict(load_golden_plan(name)) == plan_to_dict(builder())

    @pytest.mark.parametrize("name", ["datacenter", "adversarial", "corpus"])
    def test_golden_json_round_trips(self, name):
        plan = load_golden_plan(name)
        assert plan_to_dict(loads(dumps(plan))) == plan_to_dict(plan)


def small_adversarial_plan(n_jobs: int = 1):
    return build_adversarial_plan(
        lemma8_depths=(3, 4),
        lemma8_requests=300,
        mtf_depths=(3, 4),
        mtf_cycles=5,
        theorem7_depth=4,
        theorem7_requests=400,
        n_jobs=n_jobs,
    )


class TestAdversarialScenario:
    def test_lemma8_matches_direct_construction(self):
        tables = repro.run(small_adversarial_plan())
        for row in tables["lemma8"].rows:
            depth = row["depth"]
            adversary = RotorPushWorkingSetAdversary(depth)
            sequence, costs = adversary.generate_with_costs(300)
            assert row["working_set_limit"] == 2 * (depth + 1) - 1
            assert row["max_access_cost"] == max(r.access_cost for r in costs)
            assert row["cost_to_log_rank_ratio"] == max_working_set_violation(
                sequence, costs
            )

    def test_mtf_matches_legacy_harness(self):
        tables = repro.run(small_adversarial_plan())
        legacy = run_mtf_lower_bound([3, 4], cycles=5)
        assert tables["mtf_lower_bound"].rows == legacy.rows

    def test_theorem7_holds(self):
        tables = repro.run(small_adversarial_plan())
        row = tables["theorem7"].rows[0]
        assert row["rounds"] == 400
        assert row["violations"] == 0

    def test_serial_equals_parallel(self):
        serial = repro.run(small_adversarial_plan())
        parallel = repro.run(small_adversarial_plan(n_jobs=4))
        for key in serial:
            assert serial[key].rows == parallel[key].rows


def small_corpus_plan(n_jobs: int = 1, **kwargs):
    kwargs.setdefault("n_books", 2)
    kwargs.setdefault("scale", 0.05)
    kwargs.setdefault("max_requests", 1_500)
    kwargs.setdefault("algorithms", ("rotor-push", "static-oblivious"))
    return build_corpus_pipeline_plan(n_jobs=n_jobs, **kwargs)


class TestCorpusScenario:
    def test_costs_match_legacy_simulate_calls(self):
        # the former script's exact calls: placement_seed=1, seed=2, capped
        tables = repro.run(small_corpus_plan())
        expected = []
        for workload in synthetic_corpus_workloads(n_books=2, scale=0.05):
            sequence = workload.full_sequence()[:1_500]
            for name in ("rotor-push", "static-oblivious"):
                result = simulate(
                    name,
                    sequence,
                    n_nodes=workload.n_elements,
                    placement_seed=1,
                    seed=2,
                    keep_records=False,
                )
                expected.append(
                    dict(
                        dataset=workload.title,
                        algorithm=name,
                        access=result.average_access_cost,
                        adjustment=result.average_adjustment_cost,
                        total=result.average_total_cost,
                    )
                )
        assert tables["corpus_costs"].rows == expected

    def test_complexity_map_covers_every_dataset(self):
        tables = repro.run(small_corpus_plan())
        assert [row["dataset"] for row in tables["complexity_map"].rows] == [
            "book1",
            "book2",
        ]

    def test_serial_equals_parallel(self):
        serial = repro.run(small_corpus_plan())
        parallel = repro.run(small_corpus_plan(n_jobs=4))
        for key in serial:
            assert serial[key].rows == parallel[key].rows

    def test_file_backed_plan(self, tmp_path):
        book = tmp_path / "book.txt"
        book.write_text("self adjusting trees via rotor walks " * 40)
        plan = build_corpus_pipeline_plan(paths=[str(book)], max_requests=500)
        tables = repro.run(plan)
        assert [row["dataset"] for row in tables["complexity_map"].rows] == [
            "book.txt"
        ]
        assert len(tables["corpus_costs"].rows) == len(PAPER_ALGORITHMS)

    def test_plan_document_round_trips_through_json(self, tmp_path):
        plan = small_corpus_plan()
        rebuilt = loads(dumps(plan))
        assert repro.run(rebuilt)["corpus_costs"].rows == (
            repro.run(plan)["corpus_costs"].rows
        )


def small_datacenter_plan(n_jobs: int = 1):
    return build_datacenter_plan(
        n_racks=16, n_sources=2, requests_per_source=120, n_jobs=n_jobs
    )


class TestDatacenterScenario:
    def test_table_shape_and_degree_bound(self):
        table = repro.run(small_datacenter_plan())
        assert table.columns == [
            "tree_algorithm",
            "avg_hops",
            "avg_reconfig",
            "avg_total",
            "degree_bound",
        ]
        assert [row["tree_algorithm"] for row in table.rows] == [
            "rotor-push",
            "random-push",
            "static-oblivious",
        ]
        assert all(
            row["degree_bound"] == theoretical_degree_bound(2)
            for row in table.rows
        )

    def test_self_adjusting_beats_static_on_hops(self):
        table = repro.run(small_datacenter_plan())
        by_name = {row["tree_algorithm"]: row for row in table.rows}
        assert by_name["rotor-push"]["avg_hops"] < by_name["static-oblivious"]["avg_hops"]
        assert by_name["static-oblivious"]["avg_reconfig"] == 0.0

    def test_serial_equals_parallel(self):
        serial = repro.run(small_datacenter_plan())
        parallel = repro.run(small_datacenter_plan(n_jobs=4))
        assert serial.rows == parallel.rows

    def test_overrides_reach_every_stage(self):
        plan = plan_with_overrides(small_datacenter_plan(), n_requests=40)
        for _key, stage in plan.stages:
            assert stage.config.n_requests == 40


class TestTraceReplayScenario:
    def test_saved_trace_replays_through_a_plan_document(self, tmp_path):
        sequence = [i % 15 for i in range(600)]
        path = save_trace(
            str(tmp_path / "trace.txt"),
            sequence,
            n_elements=15,
            metadata={"origin": "unit-test"},
        )
        workload = load_trace_workload(str(path))
        plan = TrialPlan(
            name="replay",
            n_nodes=15,
            workload=workload.to_spec(),
            algorithms=("rotor-push",),
            config=RunConfig(n_requests=600, n_trials=1, base_seed=4),
        )
        rebuilt = loads(dumps(plan))  # the document round-trips the digest
        table = repro.run(rebuilt)
        direct = simulate(
            "rotor-push",
            sequence,
            n_nodes=15,
            placement_seed=4 + 10_000,
            seed=4 + 20_000,
            keep_records=False,
        )
        row = table.rows[0]
        assert row["mean_access_cost"] == direct.average_access_cost
        assert row["mean_adjustment_cost"] == direct.average_adjustment_cost
