"""Tests for text plotting, report generation and the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.exceptions import ExperimentError
from repro.experiments.plotting import bar_chart, heatmap, histogram_chart, line_chart
from repro.experiments.report import render_report
from repro.sim.metrics import histogram_of_differences
from repro.sim.results import ResultTable


class TestPlotting:
    def test_bar_chart_renders_all_labels(self):
        chart = bar_chart("costs", {"rotor-push": 3.5, "static": -7.0})
        assert "rotor-push" in chart and "static" in chart
        assert "-" in chart  # negative values keep their sign

    def test_bar_chart_empty(self):
        assert "(no data)" in bar_chart("costs", {})

    def test_line_chart_contains_legend_and_axis(self):
        chart = line_chart("sweep", [0.0, 0.5, 1.0], {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]})
        assert "legend" in chart
        assert "x:" in chart

    def test_line_chart_length_mismatch(self):
        with pytest.raises(ExperimentError):
            line_chart("bad", [0.0, 1.0], {"a": [1.0]})

    def test_line_chart_flat_series(self):
        chart = line_chart("flat", [0, 1], {"a": [2.0, 2.0]})
        assert "flat" in chart

    def test_heatmap_renders_grid(self):
        chart = heatmap("grid", ["p=0", "p=1"], ["a=1", "a=2"], [[1.0, 2.0], [3.0, 4.0]])
        assert "4.00" in chart

    def test_heatmap_shape_validation(self):
        with pytest.raises(ExperimentError):
            heatmap("grid", ["r"], ["c"], [[1.0], [2.0]])
        with pytest.raises(ExperimentError):
            heatmap("grid", ["r"], ["c1", "c2"], [[1.0]])

    def test_histogram_chart(self):
        histogram = histogram_of_differences([0] * 90 + [1] * 9 + [-3])
        chart = histogram_chart("differences", histogram)
        assert "samples: 100" in chart
        assert "+1" in chart and "-3" in chart

    def test_histogram_chart_empty(self):
        assert "(no data)" in histogram_chart("empty", histogram_of_differences([]))


class TestReportRendering:
    def test_render_report_includes_tables_and_expectations(self):
        table = ResultTable(name="fig3", columns=["p", "algorithm", "mean_total_cost"])
        table.add_row(p=0.0, algorithm="rotor-push", mean_total_cost=5.0)
        histogram = histogram_of_differences([0, 0, 1])
        results = {
            "fig3": table,
            "fig5b": (histogram, {"mean_difference": 0.1, "max_abs_difference": 1.0, "n_samples": 3.0}),
        }
        report = render_report(results, scale="tiny")
        assert "# Experiment results" in report
        assert "Figure 3" in report
        assert "rotor-push" in report
        assert "Figure 5b" in report
        assert "mean difference" in report

    def test_render_report_skips_missing_figures(self):
        report = render_report({}, scale="tiny")
        assert "Figure 4" not in report


class TestCLI:
    def test_parser_knows_all_commands(self):
        parser = build_parser()
        for command in (["list"], ["demo"], ["experiment", "q2"], ["report"]):
            assert parser.parse_args(command).command == command[0]

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "rotor-push" in output
        assert "paper" in output

    def test_demo_command(self, capsys):
        assert main(["demo", "--nodes", "63", "--requests", "300", "--trials", "1"]) == 0
        output = capsys.readouterr().out
        assert "rotor-push" in output
        assert "static-opt" in output

    def test_experiment_table1_command_with_csv(self, capsys, tmp_path):
        assert main(["experiment", "table1", "--csv-dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "table1_properties" in output
        assert (tmp_path / "table1_properties.csv").exists()

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
