"""JSON round-trip tests: every plan type × every registered kind/algorithm.

Pins the plan document format: ``loads(dumps(plan)) == plan`` for trial,
sweep and experiment plans over every registered workload kind (including
nested specs — mixtures, temporal bases, fixed sequences) and every
registered algorithm, plus the shipped golden plans being exactly what the
q1–q5 builders produce at the ``tiny`` scale.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import available_algorithms
from repro.exceptions import PlanError
from repro.plans import (
    ExperimentPlan,
    RunConfig,
    SweepPlan,
    TrialPlan,
    dumps,
    golden_plan_names,
    load_golden_plan,
    loads,
    validate_golden_plans,
)
from repro.workloads.spec import WorkloadSpec, registered_kinds

N = 31

#: One representative seedless template per registered workload kind.  A new
#: kind must be added here — the coverage test below fails otherwise.
KIND_TEMPLATES = {
    "uniform": WorkloadSpec.create("uniform", n_elements=N),
    "zipf": WorkloadSpec.create("zipf", n_elements=N, exponent=1.6),
    "temporal": WorkloadSpec.create(
        "temporal",
        n_elements=N,
        repeat_probability=0.4,
        base=WorkloadSpec.create("zipf", n_elements=N, exponent=1.3, seed=5),
    ),
    "combined-locality": WorkloadSpec.create(
        "combined-locality", n_elements=N, zipf_exponent=1.6, repeat_probability=0.5
    ),
    "markov": WorkloadSpec.create(
        "markov", n_elements=N, n_neighbours=3, self_loop=0.2, neighbour_probability=0.6
    ),
    "mixture": WorkloadSpec.create(
        "mixture",
        n_elements=N,
        components=(
            WorkloadSpec.create("uniform", n_elements=N, seed=1),
            WorkloadSpec.create("zipf", n_elements=N, exponent=2.0, seed=2),
        ),
        weights=(1.0, 3.0),
    ),
    "fixed-sequence": WorkloadSpec.create(
        "fixed-sequence", n_elements=N, sequence=tuple([0, 5, 5, 12, 30] * 4)
    ),
    "corpus": WorkloadSpec.create(
        "corpus",
        book_seed=101,
        n_words=300,
        reuse_probability=0.3,
        title="roundtrip",
        vocabulary_size=200,
        window=3,
    ),
    # documents may reference files that only exist where the plan runs;
    # round-tripping must not touch the filesystem
    "trace_file": WorkloadSpec.create(
        "trace_file", path="/data/trace.txt", sha256="0" * 64, n_elements=N
    ),
    "round_robin_path": WorkloadSpec.create("round_robin_path", depth=4),
}


def test_every_registered_kind_has_a_template():
    assert sorted(KIND_TEMPLATES) == registered_kinds()


@pytest.mark.parametrize("kind", sorted(KIND_TEMPLATES))
def test_trial_plan_round_trip_per_kind(kind):
    plan = TrialPlan(
        n_nodes=N,
        workload=KIND_TEMPLATES[kind],
        algorithms=("rotor-push", "static-oblivious"),
        config=RunConfig(n_requests=100, n_trials=2, chunk_size=7, backend="python"),
        name=f"trial-{kind}",
    )
    assert loads(dumps(plan)) == plan


@pytest.mark.parametrize("kind", sorted(KIND_TEMPLATES))
def test_sweep_plan_round_trip_per_kind(kind):
    plan = SweepPlan(
        name=f"sweep-{kind}",
        workload=KIND_TEMPLATES[kind],
        algorithms=("rotor-push",),
        points=({"x": 1}, {"x": 2.5}, {"x": 4, "n_nodes": N}),
        bind={"x": "some_param"},
        n_nodes=N,
        config=RunConfig(n_requests=10, n_trials=1),
    )
    assert loads(dumps(plan)) == plan


@pytest.mark.parametrize("kind", sorted(KIND_TEMPLATES))
def test_experiment_plan_round_trip_per_kind(kind):
    trial = TrialPlan(
        n_nodes=N,
        workload=KIND_TEMPLATES[kind],
        algorithms=("move-half",),
        config=RunConfig(n_requests=10, n_trials=1),
        name=f"inner-{kind}",
    )
    plan = ExperimentPlan.create(
        name=f"experiment-{kind}",
        stages=(("inner", trial),),
        assembler="tables",
        params={"labels": ("a", "b"), "threshold": 0.25, "nested": {"k": [1, 2]}},
        config=RunConfig(n_requests=5, n_trials=1),
    )
    assert loads(dumps(plan)) == plan


@pytest.mark.parametrize("algorithm", available_algorithms())
def test_trial_plan_round_trip_per_algorithm(algorithm):
    plan = TrialPlan(
        n_nodes=N,
        workload=KIND_TEMPLATES["uniform"],
        algorithms=(algorithm,),
        config=RunConfig(n_requests=10, n_trials=1),
        name=f"trial-{algorithm}",
    )
    reloaded = loads(dumps(plan))
    assert reloaded == plan
    assert reloaded.algorithms[0].name == algorithm


def test_algorithm_params_survive_round_trip():
    plan = TrialPlan(
        n_nodes=N,
        workload=KIND_TEMPLATES["uniform"],
        algorithms=(
            # registry name with extra constructor parameters
            __import__("repro").AlgorithmSpec.create("move-half", exact_swaps=True),
        ),
        config=RunConfig(n_requests=10, n_trials=1),
    )
    reloaded = loads(dumps(plan))
    assert reloaded == plan
    assert reloaded.algorithms[0].param_dict() == {"exact_swaps": True}


def test_nested_experiment_round_trip():
    q1_like = ExperimentPlan.create(
        name="outer",
        stages=(
            (
                "panel",
                ExperimentPlan.create(
                    name="panel",
                    stages=(
                        (
                            "63",
                            TrialPlan(
                                n_nodes=63,
                                workload=WorkloadSpec.create("uniform", n_elements=63),
                                algorithms=("rotor-push",),
                                config=RunConfig(n_requests=10, n_trials=1),
                            ),
                        ),
                    ),
                    assembler="table",
                ),
            ),
        ),
        assembler="tables",
    )
    assert loads(dumps(q1_like)) == q1_like


class TestSchemaErrors:
    def test_not_json(self):
        with pytest.raises(PlanError, match="JSON"):
            loads("{not json")

    def test_unknown_plan_type(self):
        with pytest.raises(PlanError, match="unknown plan type"):
            loads('{"plan": "banana", "name": "x"}')

    def test_missing_required_key(self):
        with pytest.raises(PlanError, match="missing required key"):
            loads('{"plan": "trial", "name": "x", "n_nodes": 31}')

    def test_stage_without_plan_key(self):
        with pytest.raises(PlanError, match="stage"):
            loads(
                '{"plan": "experiment", "name": "x", "stages": [{"key": "a"}]}'
            )

    def test_bad_document_references_fail_like_python_construction(self):
        document = (
            '{"plan": "trial", "name": "x", "n_nodes": 31,'
            ' "workload": {"kind": "nope", "seed": null, "params": {"n_elements": 31}},'
            ' "algorithms": [{"name": "rotor-push", "params": {}}],'
            ' "config": {"n_requests": 10, "n_trials": 1}}'
        )
        from repro.exceptions import WorkloadError

        with pytest.raises(WorkloadError, match="nope"):
            loads(document)


class TestGoldenPlans:
    def test_golden_plans_ship_and_validate(self):
        names = validate_golden_plans()
        assert {"q1", "q2", "q3", "q4", "q5", "smoke"} <= set(names)

    def test_golden_plans_match_builders_at_tiny_scale(self):
        from repro.experiments import (
            build_q1_plan,
            build_q2_plan,
            build_q3_plan,
            build_q4_plan,
            build_q5_plan,
        )

        builders = {
            "q1": build_q1_plan,
            "q2": build_q2_plan,
            "q3": build_q3_plan,
            "q4": build_q4_plan,
            "q5": build_q5_plan,
        }
        for name, builder in builders.items():
            assert load_golden_plan(name) == builder("tiny"), name

    def test_golden_round_trip_identity(self):
        for name in golden_plan_names():
            plan = load_golden_plan(name)
            assert loads(dumps(plan)) == plan

    def test_unknown_golden_name_lists_available(self):
        with pytest.raises(PlanError) as excinfo:
            load_golden_plan("q99")
        assert "q1" in str(excinfo.value)
