"""Tests for the plan model: validation, errors, overrides, deprecations."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.core import backend as backend_mod
from repro.exceptions import BackendError, ExperimentError, PlanError, WorkloadError
from repro.plans import (
    ExperimentPlan,
    RunConfig,
    SweepPlan,
    TrialPlan,
    plan_with_overrides,
)
from repro.plans.execute import run as run_plan
from repro.sim.runner import TrialRunner, compare_algorithms
from repro.workloads.spec import WorkloadSpec, registered_kinds
from repro.workloads.uniform import UniformWorkload


def tiny_trial_plan(**config_kwargs) -> TrialPlan:
    return TrialPlan(
        n_nodes=31,
        workload=WorkloadSpec.create("uniform", n_elements=31),
        algorithms=("rotor-push",),
        config=RunConfig(n_requests=50, n_trials=1, **config_kwargs),
    )


class TestRunConfig:
    def test_defaults_are_valid(self):
        config = RunConfig()
        assert config.n_jobs == 1 and config.backend is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_trials": 0},
            {"n_trials": -1},
            {"n_requests": -5},
            {"n_jobs": 0},
            {"chunk_size": 0},
        ],
    )
    def test_invalid_values_raise_plan_errors_at_construction(self, kwargs):
        # one exception family for plan-document validation, whatever layer
        # the delegated validator lives in
        with pytest.raises(PlanError):
            RunConfig(**kwargs)

    def test_unknown_backend_name_keeps_dedicated_error(self):
        with pytest.raises(BackendError):
            RunConfig(backend="fortran")

    def test_with_overrides_replaces_only_given_knobs(self):
        config = RunConfig(n_requests=10, n_jobs=1, backend="python")
        updated = config.with_overrides(n_jobs=4)
        assert updated.n_jobs == 4
        assert updated.backend == "python"
        assert updated.n_requests == 10
        assert config.with_overrides() is config

    def test_round_trip(self):
        config = RunConfig(n_requests=7, n_trials=2, chunk_size=16, backend="python")
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_unknown_keys_rejected(self):
        with pytest.raises(PlanError):
            RunConfig.from_dict({"n_requests": 5, "granularity": 3})


class TestPlanValidation:
    def test_unknown_algorithm_names_bad_key_and_lists_registered(self):
        from repro.exceptions import AlgorithmError

        with pytest.raises(AlgorithmError) as excinfo:
            TrialPlan(
                n_nodes=31,
                workload=WorkloadSpec.create("uniform", n_elements=31),
                algorithms=("rotor-pusher",),
                config=RunConfig(n_requests=10),
            )
        message = str(excinfo.value)
        assert "rotor-pusher" in message
        assert "rotor-push" in message  # the listing of registered names

    def test_unknown_workload_kind_names_bad_key_and_lists_registered(self):
        with pytest.raises(WorkloadError) as excinfo:
            TrialPlan(
                n_nodes=31,
                workload=WorkloadSpec.create("ziph", n_elements=31),
                algorithms=("rotor-push",),
                config=RunConfig(n_requests=10),
            )
        message = str(excinfo.value)
        assert "ziph" in message
        for kind in registered_kinds():
            assert kind in message

    def test_duplicate_algorithms_rejected(self):
        with pytest.raises(PlanError):
            tiny = tiny_trial_plan()
            TrialPlan(
                n_nodes=tiny.n_nodes,
                workload=tiny.workload,
                algorithms=("rotor-push", "rotor-push"),
                config=tiny.config,
            )

    def test_workload_universe_must_match_tree_size(self):
        with pytest.raises(PlanError):
            TrialPlan(
                n_nodes=31,
                workload=WorkloadSpec.create("uniform", n_elements=63),
                algorithms=("rotor-push",),
                config=RunConfig(n_requests=10),
            )

    def test_sweep_needs_points(self):
        with pytest.raises(PlanError):
            SweepPlan(
                workload=WorkloadSpec.create("uniform", n_elements=31),
                algorithms=("rotor-push",),
                points=(),
                n_nodes=31,
            )

    def test_sweep_bind_key_missing_from_points_rejected(self):
        """A typo'd bind key must fail at construction, not mid-run."""
        with pytest.raises(PlanError, match="appear in no sweep point"):
            SweepPlan(
                workload=WorkloadSpec.create("temporal", n_elements=31),
                algorithms=("rotor-push",),
                points=({"p": 0.1}, {"p": 0.9}),
                bind={"q": "repeat_probability"},  # typo: no point has 'q'
                n_nodes=31,
            )

    def test_sweep_unbound_point_key_rejected(self):
        """A swept variable that feeds nothing would silently sweep nothing."""
        with pytest.raises(PlanError, match="not bound"):
            SweepPlan(
                workload=WorkloadSpec.create("temporal", n_elements=31),
                algorithms=("rotor-push",),
                points=({"p": 0.1}, {"p": 0.9}),
                bind=(),
                n_nodes=31,
            )

    def test_sweep_n_nodes_point_key_is_structural(self):
        plan = SweepPlan(
            workload=WorkloadSpec.create("uniform", n_elements=31),
            algorithms=("rotor-push",),
            points=({"n_nodes": 31}, {"n_nodes": 63}),
            n_nodes=31,
        )
        assert len(plan.points) == 2

    def test_experiment_duplicate_stage_keys_rejected(self):
        plan = tiny_trial_plan()
        with pytest.raises(PlanError):
            ExperimentPlan.create(
                name="dup", stages=(("a", plan), ("a", plan)), assembler="tables"
            )

    def test_experiment_stage_must_be_plan(self):
        with pytest.raises(PlanError):
            ExperimentPlan.create(name="bad", stages=(("a", "not-a-plan"),))

    def test_plans_are_hashable_and_frozen(self):
        plan = tiny_trial_plan()
        assert hash(plan) == hash(tiny_trial_plan())
        with pytest.raises(AttributeError):
            plan.n_nodes = 63


class TestBackendAvailability:
    def test_array_without_numpy_raises_dedicated_error_before_serving(
        self, monkeypatch
    ):
        """A plan pinning backend='array' must fail with BackendError up
        front (not somewhere inside the serve loop) when NumPy is absent."""
        plan = tiny_trial_plan(backend="array")
        monkeypatch.setattr(backend_mod, "HAS_NUMPY", False)
        with pytest.raises(BackendError) as excinfo:
            run_plan(plan)
        assert "array" in str(excinfo.value)
        assert "NumPy" in str(excinfo.value)

    def test_auto_and_python_never_raise_without_numpy(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "HAS_NUMPY", False)
        for backend in (None, "python"):
            table = run_plan(tiny_trial_plan(backend=backend))
            assert len(table) == 1

    def test_nested_experiment_plans_are_checked(self, monkeypatch):
        nested = ExperimentPlan.create(
            name="outer",
            stages=(("inner", tiny_trial_plan(backend="array")),),
            assembler="tables",
        )
        monkeypatch.setattr(backend_mod, "HAS_NUMPY", False)
        with pytest.raises(BackendError):
            run_plan(nested)


class TestOverrides:
    def test_overrides_recurse_through_experiment_plans(self):
        inner = tiny_trial_plan(backend="python")
        assembler_only = ExperimentPlan.create(
            name="hist",
            assembler="q4_histogram",
            params={"n_nodes": 31, "n_sequences": 2, "rotor": "rotor-push", "random": "random-push"},
            config=RunConfig(n_requests=10, keep_records=True),
        )
        outer = ExperimentPlan.create(
            name="outer",
            stages=(("a", inner), ("b", assembler_only)),
            assembler="tables",
        )
        overridden = plan_with_overrides(outer, n_jobs=4, backend="array")
        stage_a = dict(overridden.stages)["a"]
        stage_b = dict(overridden.stages)["b"]
        assert stage_a.config.n_jobs == 4 and stage_a.config.backend == "array"
        assert stage_b.config.n_jobs == 4 and stage_b.config.backend == "array"
        # untouched knobs keep the plan's values
        assert stage_a.config.n_requests == 50
        # no overrides -> identity
        assert plan_with_overrides(outer) is outer


class TestDeprecations:
    def test_trial_runner_legacy_knobs_warn(self):
        with pytest.warns(DeprecationWarning, match="RunConfig"):
            TrialRunner(n_nodes=31, n_requests=10, n_jobs=1)

    def test_compare_algorithms_legacy_knobs_warn(self):
        with pytest.warns(DeprecationWarning, match="RunConfig"):
            compare_algorithms(
                ["rotor-push"],
                lambda seed: UniformWorkload(31, seed=seed),
                n_nodes=31,
                n_requests=20,
                n_trials=1,
                backend="python",
            )

    def test_config_path_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            runner = TrialRunner(
                n_nodes=31, config=RunConfig(n_requests=10, n_trials=1, n_jobs=1)
            )
            assert runner.n_requests == 10 and runner.n_jobs == 1
            compare_algorithms(
                ["rotor-push"],
                lambda seed: UniformWorkload(31, seed=seed),
                n_nodes=31,
                config=RunConfig(n_requests=20, n_trials=1),
            )

    def test_config_and_loose_kwargs_conflict(self):
        with pytest.raises(ExperimentError):
            TrialRunner(
                n_nodes=31, n_requests=10, config=RunConfig(n_requests=10)
            )

    def test_sweep_config_and_loose_kwargs_conflict(self):
        from repro.sim.sweep import ParameterSweep
        from repro.workloads.uniform import UniformWorkload as UW

        with pytest.raises(ExperimentError, match="either config"):
            ParameterSweep(
                points=[{"p": 0.1}],
                workload_factory=lambda point, seed: UW(31, seed=seed),
                algorithms=["rotor-push"],
                n_nodes=31,
                n_jobs=8,  # silently dropping this would be a lie
                config=RunConfig(n_requests=10, n_trials=1),
            )

    def test_reseed_warns_and_still_works(self):
        workload = UniformWorkload(31, seed=3)
        fresh = UniformWorkload(31, seed=9).generate(40)
        with pytest.warns(DeprecationWarning, match="spec"):
            workload.reseed(9)
        assert workload.generate(40) == fresh

    def test_plan_execution_emits_no_deprecation_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_plan(tiny_trial_plan())

    def test_repro_run_entrypoint(self):
        table = repro.run(tiny_trial_plan())
        assert [row["algorithm"] for row in table.rows] == ["rotor-push"]
