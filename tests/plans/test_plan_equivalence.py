"""Golden-plan equivalence: q1–q5 via ``repro.run`` == the legacy code paths.

Each test replicates the pre-plan imperative implementation of an experiment
(hand-built ``TrialRunner``/``ParameterSweep``/payload code, exactly as the
q-modules were written before the plan API) and asserts the plan-built result
is bit-identical — at ``n_jobs ∈ {1, 4}`` — and that a plan serialised to
JSON, reloaded and re-run reproduces the same results.
"""

from __future__ import annotations

import pytest

import repro
from repro.algorithms.registry import (
    PAPER_ALGORITHMS,
    SELF_ADJUSTING_ALGORITHMS,
    RandomPush,
    RotorPush,
    StaticOblivious,
)
from repro.experiments import (
    SCALES,
    build_q1_spatial_plan,
    build_q1_temporal_plan,
    build_q2_plan,
    build_q3_plan,
    build_q4_histogram_plan,
    build_q4_wireframe_plan,
    build_q5_costs_plan,
    build_q5_complexity_plan,
)
from repro.experiments.config import ExperimentScale
from repro.experiments.q1_network_size import Q1_TEMPORAL_P, Q1_ZIPF_A
from repro.experiments.q5_corpus import corpus_for_scale
from repro.plans import RunConfig, dumps, loads
from repro.sim.metrics import histogram_of_differences, per_request_cost_difference
from repro.sim.results import ResultTable
from repro.sim.runner import (
    SequenceSource,
    SpecSource,
    TrialPayload,
    TrialRunner,
    execute_payloads,
)
from repro.sim.sweep import ParameterSweep
from repro.workloads.composite import CombinedLocalityWorkload
from repro.workloads.spec import DEFAULT_CHUNK_SIZE, WorkloadSpec
from repro.workloads.temporal import TemporalWorkload
from repro.workloads.zipf import ZipfWorkload

# A miniature scale so the full equivalence matrix runs in seconds.
SCALES.setdefault(
    "unit",
    ExperimentScale(
        name="unit",
        n_nodes=127,
        n_requests=1_200,
        n_trials=2,
        q1_sizes=[31, 127],
        temporal_probabilities=[0.0, 0.9],
        zipf_exponents=[1.001, 2.2],
        q4_probabilities=[0.0, 0.9],
        q4_exponents=[1.001, 2.2],
        corpus_scale=0.03,
    ),
)

SCALE = "unit"
JOBS = [1, 4]

_BASELINE = StaticOblivious.name


# ---------------------------------------------------------------- legacy paths


def legacy_q1(scale_name: str, locality: str, table_name: str, n_jobs: int) -> ResultTable:
    """The pre-plan Q1 implementation, verbatim (modulo config packaging)."""
    scale = SCALES[scale_name]
    algorithms = list(SELF_ADJUSTING_ALGORITHMS) + [_BASELINE]
    table = ResultTable(
        name=table_name,
        columns=[
            "tree_size",
            "locality",
            "algorithm",
            "mean_total_cost",
            "baseline_total_cost",
            "difference",
        ],
    )
    for tree_size in scale.q1_sizes:
        n_requests = min(scale.n_requests, max(1_000, tree_size * 20))
        runner = TrialRunner(
            n_nodes=tree_size,
            config=RunConfig(
                n_requests=n_requests,
                n_trials=scale.n_trials,
                base_seed=scale.base_seed,
                n_jobs=n_jobs,
            ),
        )

        if locality == "temporal":
            def factory(seed, _size=tree_size):
                return TemporalWorkload(_size, Q1_TEMPORAL_P, seed=seed)

        else:
            def factory(seed, _size=tree_size):
                return ZipfWorkload(_size, Q1_ZIPF_A, seed=seed)

        aggregated = TrialRunner.aggregate(runner.run(algorithms, factory))
        baseline_cost = aggregated[_BASELINE].mean_total_cost
        for algorithm in SELF_ADJUSTING_ALGORITHMS:
            cost = aggregated[algorithm].mean_total_cost
            table.add_row(
                tree_size=tree_size,
                locality=locality,
                algorithm=algorithm,
                mean_total_cost=cost,
                baseline_total_cost=baseline_cost,
                difference=cost - baseline_cost,
            )
    return table


def legacy_q2(scale_name: str, n_jobs: int) -> ResultTable:
    scale = SCALES[scale_name]
    sweep = ParameterSweep(
        points=[{"p": float(p)} for p in scale.temporal_probabilities],
        workload_factory=lambda point, seed: TemporalWorkload(
            scale.n_nodes, float(point["p"]), seed=seed
        ),
        algorithms=list(PAPER_ALGORITHMS),
        n_nodes=scale.n_nodes,
        config=RunConfig(
            n_requests=scale.n_requests,
            n_trials=scale.n_trials,
            base_seed=scale.base_seed,
            n_jobs=n_jobs,
        ),
    )
    return sweep.run(table_name="fig3_temporal_locality")


def legacy_q3(scale_name: str, n_jobs: int) -> ResultTable:
    scale = SCALES[scale_name]
    sweep = ParameterSweep(
        points=[{"a": float(a)} for a in scale.zipf_exponents],
        workload_factory=lambda point, seed: ZipfWorkload(
            scale.n_nodes, float(point["a"]), seed=seed
        ),
        algorithms=list(PAPER_ALGORITHMS),
        n_nodes=scale.n_nodes,
        config=RunConfig(
            n_requests=scale.n_requests,
            n_trials=scale.n_trials,
            base_seed=scale.base_seed,
            n_jobs=n_jobs,
        ),
    )
    return sweep.run(table_name="fig4_spatial_locality")


def legacy_q4_wireframe(scale_name: str, n_jobs: int) -> ResultTable:
    scale = SCALES[scale_name]
    algorithms = [RotorPush.name, _BASELINE]
    table = ResultTable(
        name="fig5a_combined_locality",
        columns=[
            "p",
            "a",
            "rotor_total_cost",
            "static_oblivious_total_cost",
            "difference",
        ],
    )
    runner = TrialRunner(
        n_nodes=scale.n_nodes,
        config=RunConfig(
            n_requests=scale.n_requests,
            n_trials=scale.n_trials,
            base_seed=scale.base_seed,
        ),
    )
    all_payloads = []
    cells = []
    for probability in scale.q4_probabilities:
        for exponent in scale.q4_exponents:
            sources = runner.trial_sources(
                lambda seed, _p=probability, _a=exponent: CombinedLocalityWorkload(
                    scale.n_nodes, _a, _p, seed=seed
                )
            )
            payloads = runner.build_payloads(algorithms, sources)
            all_payloads.extend(payloads)
            cells.append((probability, exponent, payloads))
    all_results = execute_payloads(all_payloads, n_jobs)
    cursor = 0
    for probability, exponent, payloads in cells:
        results = all_results[cursor : cursor + len(payloads)]
        cursor += len(payloads)
        aggregated = TrialRunner.aggregate(
            TrialRunner.collect(algorithms, payloads, results)
        )
        rotor_cost = aggregated[RotorPush.name].mean_total_cost
        static_cost = aggregated[_BASELINE].mean_total_cost
        table.add_row(
            p=float(probability),
            a=float(exponent),
            rotor_total_cost=rotor_cost,
            static_oblivious_total_cost=static_cost,
            difference=rotor_cost - static_cost,
        )
    return table


def legacy_q4_histogram(scale_name: str, n_jobs: int):
    scale = SCALES[scale_name]
    n_sequences = max(2, scale.n_trials)
    payloads = []
    for index in range(n_sequences):
        spec = WorkloadSpec.create(
            "uniform", seed=scale.base_seed + index, n_elements=scale.n_nodes
        )
        source = SpecSource(spec, scale.n_requests, DEFAULT_CHUNK_SIZE, shared=True)
        placement_seed = scale.base_seed + 500 + index
        payloads.append(
            TrialPayload(
                algorithm=RotorPush.name,
                source=source,
                n_nodes=scale.n_nodes,
                placement_seed=placement_seed,
                algorithm_seed=None,
                keep_records=True,
                trial=index,
            )
        )
        payloads.append(
            TrialPayload(
                algorithm=RandomPush.name,
                source=source,
                n_nodes=scale.n_nodes,
                placement_seed=placement_seed,
                algorithm_seed=scale.base_seed + 900 + index,
                keep_records=True,
                trial=index,
            )
        )
    results = execute_payloads(payloads, n_jobs)
    differences = []
    for pair_start in range(0, len(results), 2):
        differences.extend(
            per_request_cost_difference(
                results[pair_start], results[pair_start + 1], which="access"
            )
        )
    return histogram_of_differences(differences)


def legacy_q5_costs(scale_name: str, n_jobs: int) -> ResultTable:
    scale = SCALES[scale_name]
    table = ResultTable(
        name="fig7_corpus_costs",
        columns=[
            "dataset",
            "algorithm",
            "n_requests",
            "tree_size",
            "mean_access_cost",
            "mean_adjustment_cost",
            "mean_total_cost",
        ],
    )
    payloads = []
    for index, workload in enumerate(corpus_for_scale(scale_name)):
        source = SequenceSource(tuple(workload.full_sequence()[: scale.n_requests]))
        for algorithm in PAPER_ALGORITHMS:
            payloads.append(
                TrialPayload(
                    algorithm=algorithm,
                    source=source,
                    n_nodes=workload.n_elements,
                    placement_seed=scale.base_seed,
                    algorithm_seed=scale.base_seed + 1,
                    keep_records=False,
                    trial=index,
                    metadata={"dataset": workload.title},
                )
            )
    results = execute_payloads(payloads, n_jobs)
    for payload, result in zip(payloads, results):
        table.add_row(
            dataset=payload.metadata["dataset"],
            algorithm=payload.algorithm_name,
            n_requests=result.n_requests,
            tree_size=payload.n_nodes,
            mean_access_cost=result.average_access_cost,
            mean_adjustment_cost=result.average_adjustment_cost,
            mean_total_cost=result.average_total_cost,
        )
    return table


# ------------------------------------------------------------------ the tests


def assert_tables_identical(plan_table: ResultTable, legacy_table: ResultTable):
    assert plan_table.columns == legacy_table.columns
    assert plan_table.rows == legacy_table.rows  # exact (bit-identical floats)


@pytest.mark.parametrize("n_jobs", JOBS)
@pytest.mark.parametrize(
    "builder, locality, table_name",
    [
        (build_q1_temporal_plan, "temporal", "fig2a_network_size_temporal"),
        (build_q1_spatial_plan, "spatial", "fig2b_network_size_spatial"),
    ],
)
def test_q1_panels_bit_identical(builder, locality, table_name, n_jobs):
    plan_table = repro.run(builder(SCALE, n_jobs=n_jobs))
    legacy_table = legacy_q1(SCALE, locality, table_name, n_jobs)
    assert_tables_identical(plan_table, legacy_table)


@pytest.mark.parametrize("n_jobs", JOBS)
def test_q2_bit_identical(n_jobs):
    assert_tables_identical(
        repro.run(build_q2_plan(SCALE, n_jobs=n_jobs)), legacy_q2(SCALE, n_jobs)
    )


@pytest.mark.parametrize("n_jobs", JOBS)
def test_q3_bit_identical(n_jobs):
    assert_tables_identical(
        repro.run(build_q3_plan(SCALE, n_jobs=n_jobs)), legacy_q3(SCALE, n_jobs)
    )


@pytest.mark.parametrize("n_jobs", JOBS)
def test_q4_wireframe_bit_identical(n_jobs):
    plan_table = repro.run(build_q4_wireframe_plan(SCALE, n_jobs=n_jobs))
    legacy_table = legacy_q4_wireframe(SCALE, n_jobs)
    assert plan_table.columns == legacy_table.columns
    assert plan_table.rows == legacy_table.rows


@pytest.mark.parametrize("n_jobs", JOBS)
def test_q4_histogram_bit_identical(n_jobs):
    histogram, summary = repro.run(build_q4_histogram_plan(SCALE, n_jobs=n_jobs))
    legacy = legacy_q4_histogram(SCALE, n_jobs)
    assert histogram.counts == legacy.counts
    assert summary["n_samples"] == float(legacy.total)


@pytest.mark.parametrize("n_jobs", JOBS)
def test_q5_costs_bit_identical(n_jobs):
    assert_tables_identical(
        repro.run(build_q5_costs_plan(SCALE, n_jobs=n_jobs)),
        legacy_q5_costs(SCALE, n_jobs),
    )


def test_q5_complexity_map_matches_direct_analysis():
    plan_table = repro.run(build_q5_complexity_plan(SCALE))
    from repro.experiments.q5_corpus import _complexity_table

    assert plan_table.rows == _complexity_table(corpus_for_scale(SCALE)).rows


@pytest.mark.parametrize(
    "builder",
    [build_q1_temporal_plan, build_q2_plan, build_q4_wireframe_plan],
)
def test_json_reload_reruns_identically(builder):
    """A plan dumped to JSON, reloaded and re-run reproduces the same table."""
    plan = builder(SCALE)
    direct = repro.run(plan)
    reloaded_plan = loads(dumps(plan))
    assert reloaded_plan == plan
    reloaded = repro.run(reloaded_plan)
    assert reloaded.rows == direct.rows


def test_parallel_equals_serial_through_plans():
    """The n_jobs knob inside a plan config never changes results."""
    serial = repro.run(build_q2_plan(SCALE, n_jobs=1))
    parallel = repro.run(build_q2_plan(SCALE, n_jobs=4))
    assert serial.rows == parallel.rows
