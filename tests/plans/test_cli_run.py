"""Tests for the CLI ``run`` subcommand and its override precedence."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main, resolve_run_plan
from repro.exceptions import PlanError
from repro.plans import RunConfig, TrialPlan, dump
from repro.workloads.spec import WorkloadSpec


def small_plan(**config_kwargs) -> TrialPlan:
    return TrialPlan(
        name="cli-test",
        n_nodes=31,
        workload=WorkloadSpec.create("uniform", n_elements=31),
        algorithms=("rotor-push", "static-oblivious"),
        config=RunConfig(n_requests=200, n_trials=2, **config_kwargs),
    )


class TestParser:
    def test_parser_knows_run(self):
        args = build_parser().parse_args(["run", "smoke", "--jobs", "2"])
        assert args.command == "run" and args.plan == "smoke" and args.jobs == 2

    def test_run_rejects_zero_jobs(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "smoke", "--jobs", "0"])


class TestResolution:
    def test_resolves_plan_file(self, tmp_path):
        path = tmp_path / "plan.json"
        dump(small_plan(), path)
        args = build_parser().parse_args(["run", str(path)])
        plan = resolve_run_plan(args)
        assert plan == small_plan()

    def test_resolves_golden_name(self):
        args = build_parser().parse_args(["run", "smoke"])
        plan = resolve_run_plan(args)
        assert plan.name == "smoke"

    def test_unknown_plan_errors_with_golden_listing(self):
        args = build_parser().parse_args(["run", "no-such-plan.json"])
        with pytest.raises(PlanError) as excinfo:
            resolve_run_plan(args)
        assert "smoke" in str(excinfo.value)

    def test_main_turns_any_repro_error_into_clean_exit(self, tmp_path, capsys):
        """Unknown names, bad kinds etc. must print one message, not a
        traceback — whatever exception family they raise."""
        bad = tmp_path / "bad.json"
        bad.write_text(
            '{"plan": "trial", "name": "x", "n_nodes": 31,'
            ' "workload": {"kind": "zipff", "seed": null, "params": {"n_elements": 31}},'
            ' "algorithms": [{"name": "rotor-push", "params": {}}],'
            ' "config": {"n_requests": 10, "n_trials": 1}}'
        )
        assert main(["run", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "repro run:" in err and "zipff" in err


class TestOverridePrecedence:
    def test_cli_flags_override_plan_document(self, tmp_path):
        path = tmp_path / "plan.json"
        dump(small_plan(n_jobs=1, backend="python", chunk_size=64), path)
        args = build_parser().parse_args(
            ["run", str(path), "--jobs", "3", "--backend", "auto", "--chunk-size", "16"]
        )
        plan = resolve_run_plan(args)
        assert plan.config.n_jobs == 3
        assert plan.config.backend == "auto"
        assert plan.config.chunk_size == 16

    def test_absent_flags_keep_plan_values(self, tmp_path):
        path = tmp_path / "plan.json"
        dump(small_plan(n_jobs=2, backend="python", chunk_size=64), path)
        args = build_parser().parse_args(["run", str(path)])
        plan = resolve_run_plan(args)
        assert plan.config.n_jobs == 2
        assert plan.config.backend == "python"
        assert plan.config.chunk_size == 64

    def test_partial_override(self, tmp_path):
        path = tmp_path / "plan.json"
        dump(small_plan(n_jobs=2, backend="python"), path)
        args = build_parser().parse_args(["run", str(path), "--jobs", "5"])
        plan = resolve_run_plan(args)
        assert plan.config.n_jobs == 5
        assert plan.config.backend == "python"  # untouched

    def test_trials_and_requests_override_plan_document(self, tmp_path):
        path = tmp_path / "plan.json"
        dump(small_plan(), path)  # document says 200 requests, 2 trials
        args = build_parser().parse_args(
            ["run", str(path), "--trials", "1", "--requests", "50"]
        )
        plan = resolve_run_plan(args)
        assert plan.config.n_trials == 1
        assert plan.config.n_requests == 50

    def test_absent_trials_and_requests_keep_plan_values(self, tmp_path):
        path = tmp_path / "plan.json"
        dump(small_plan(), path)
        plan = resolve_run_plan(build_parser().parse_args(["run", str(path)]))
        assert plan.config.n_trials == 2
        assert plan.config.n_requests == 200

    def test_trials_and_requests_recurse_into_experiment_stages(self):
        from repro.plans import ExperimentPlan

        args = build_parser().parse_args(
            ["run", "q1", "--trials", "1", "--requests", "11"]
        )
        plan = resolve_run_plan(args)

        def leaf_configs(node):
            if isinstance(node, ExperimentPlan):
                for _key, sub in node.stages:
                    yield from leaf_configs(sub)
            else:
                yield node.config

        configs = list(leaf_configs(plan))
        assert configs  # q1 is an experiment over sweep stages
        assert all(config.n_trials == 1 for config in configs)
        assert all(config.n_requests == 11 for config in configs)

    def test_bad_trials_and_requests_rejected_by_the_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "smoke", "--trials", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "smoke", "--requests", "-1"])

    def test_resilience_flags_override_plan_document(self, tmp_path):
        path = tmp_path / "plan.json"
        dump(small_plan(max_retries=1, cache_dir="from-plan"), path)
        args = build_parser().parse_args(
            [
                "run",
                str(path),
                "--max-retries",
                "5",
                "--cache-dir",
                "from-cli",
                "--resume",
            ]
        )
        plan = resolve_run_plan(args)
        assert plan.config.max_retries == 5
        assert plan.config.cache_dir == "from-cli"
        assert args.resume is True

    def test_absent_resilience_flags_keep_plan_values(self, tmp_path):
        path = tmp_path / "plan.json"
        dump(small_plan(max_retries=7, cache_dir="keep-me"), path)
        args = build_parser().parse_args(["run", str(path)])
        plan = resolve_run_plan(args)
        assert plan.config.max_retries == 7
        assert plan.config.cache_dir == "keep-me"
        assert args.resume is False

    def test_resilience_flags_recurse_into_experiment_stages(self):
        from repro.plans import ExperimentPlan

        args = build_parser().parse_args(
            ["run", "q1", "--max-retries", "3", "--cache-dir", "deep"]
        )
        plan = resolve_run_plan(args)

        def leaf_configs(node):
            if isinstance(node, ExperimentPlan):
                for _key, sub in node.stages:
                    yield from leaf_configs(sub)
            else:
                yield node.config

        configs = list(leaf_configs(plan))
        assert configs
        assert all(config.max_retries == 3 for config in configs)
        assert all(config.cache_dir == "deep" for config in configs)

    def test_bad_max_retries_rejected_by_the_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "smoke", "--max-retries", "-1"])

    def test_executor_flag_overrides_plan_document(self, tmp_path):
        path = tmp_path / "plan.json"
        dump(small_plan(executor="tcp://plan-host:1"), path)
        args = build_parser().parse_args(
            ["run", str(path), "--executor", "tcp://cli-host:2,cli-host:3"]
        )
        plan = resolve_run_plan(args)
        assert plan.config.executor == "tcp://cli-host:2,cli-host:3"
        # absent flag keeps the document's fleet
        plan = resolve_run_plan(build_parser().parse_args(["run", str(path)]))
        assert plan.config.executor == "tcp://plan-host:1"

    def test_bad_executor_address_is_a_clean_error(self, capsys):
        assert main(["run", "smoke", "--executor", "udp://host:1"]) == 2
        assert "executor scheme" in capsys.readouterr().err


class TestWorkerAndCacheCommands:
    def test_worker_rejects_bad_listen_address(self, capsys):
        assert main(["worker", "--listen", "udp://0.0.0.0:1"]) == 2
        assert "tcp://HOST:PORT" in capsys.readouterr().err

    def test_cache_lifecycle_end_to_end(self, tmp_path, capsys):
        """stats on an empty store, stats/verify after a run, prune after
        corrupting an entry — the CLI twin of the ResultStore maintenance."""
        from repro.resilience import ResultStore

        cache = str(tmp_path / "store")
        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        assert "entries:         0" in capsys.readouterr().out

        path = tmp_path / "plan.json"
        dump(small_plan(), path)
        assert main(["run", str(path), "--cache-dir", cache]) == 0
        capsys.readouterr()

        assert main(["cache", "verify", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "corrupt entries: 0" in out

        store = ResultStore(cache)
        store.path_for(store.keys()[0]).write_text("garbage")
        assert main(["cache", "verify", "--cache-dir", cache]) == 1
        assert "corrupt entries: 1" in capsys.readouterr().out
        assert main(["cache", "prune", "--cache-dir", cache]) == 0
        assert "removed corrupt entries: 1" in capsys.readouterr().out
        assert main(["cache", "verify", "--cache-dir", cache]) == 0


class TestExecution:
    def test_run_plan_file_end_to_end(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        dump(small_plan(), path)
        assert main(["run", str(path)]) == 0
        output = capsys.readouterr().out
        assert "cli-test" in output
        assert "rotor-push" in output and "static-oblivious" in output

    def test_run_with_csv_export(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        dump(small_plan(), path)
        csv_dir = tmp_path / "csv"
        assert main(["run", str(path), "--csv-dir", str(csv_dir)]) == 0
        assert (csv_dir / "cli-test.csv").is_file()

    def test_run_golden_smoke(self, capsys):
        assert main(["run", "smoke", "--backend", "python"]) == 0
        output = capsys.readouterr().out
        assert "smoke" in output

    def test_list_shows_golden_plans(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "Golden plans" in output and "smoke" in output
        assert "multisource" in output

    def test_run_golden_multisource(self, capsys):
        assert (
            main(["run", "multisource", "--trials", "1", "--requests", "20"]) == 0
        )
        output = capsys.readouterr().out
        assert "multisource" in output
        assert "rotor-push" in output and "max-push" in output
        assert "total" in output

    def test_run_network_plan_file(self, tmp_path, capsys):
        from repro.network.traffic import TrafficSpec
        from repro.plans import NetworkPlan

        plan = NetworkPlan(
            name="cli-network",
            traffic=TrafficSpec.create(
                15,
                {0: WorkloadSpec.create("uniform", n_elements=15),
                 4: WorkloadSpec.create("uniform", n_elements=15)},
            ),
            algorithm="rotor-push",
            config=RunConfig(n_requests=30, n_trials=1),
        )
        path = tmp_path / "network.json"
        dump(plan, path)
        csv_dir = tmp_path / "csv"
        assert main(["run", str(path), "--csv-dir", str(csv_dir)]) == 0
        assert (csv_dir / "cli-network.csv").is_file()
        assert "cli-network" in capsys.readouterr().out

    def test_demo_runs_through_a_plan(self, capsys):
        assert main(["demo", "--nodes", "31", "--requests", "200", "--trials", "1"]) == 0
        output = capsys.readouterr().out
        assert "rotor-push" in output

    def test_run_with_cache_then_resume(self, tmp_path, capsys):
        """End-to-end resume through the CLI: the second invocation executes
        nothing and prints the identical table."""
        from repro.plans import last_run_stats

        path = tmp_path / "plan.json"
        dump(small_plan(), path)
        cache = tmp_path / "cache"
        assert main(["run", str(path), "--cache-dir", str(cache)]) == 0
        cold = capsys.readouterr().out
        assert last_run_stats().stored == 4  # 2 trials x 2 algorithms
        assert (
            main(["run", str(path), "--cache-dir", str(cache), "--resume"]) == 0
        )
        warm = capsys.readouterr().out
        stats = last_run_stats()
        assert stats.executed == 0 and stats.cache_hits == 4
        assert warm == cold

    def test_resume_without_store_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        dump(small_plan(), path)
        assert main(["run", str(path), "--resume"]) == 2
        err = capsys.readouterr().err
        assert "repro run:" in err and "cache" in err
