"""TrafficSweepPlan: model validation, bind semantics, round-trip, execution.

The traffic twin of the SweepPlan contract: points bind into
:class:`~repro.network.traffic.TrafficSpec` fields (source count,
interleaving, weights, per-source workload parameters), every point is
validated eagerly at construction, the plan JSON round-trips, and execution
is bit-identical for every ``n_jobs``.
"""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import PlanError
from repro.network.traffic import TrafficSpec
from repro.plans import (
    ExperimentPlan,
    RunConfig,
    TrafficSweepPlan,
    dumps,
    loads,
    plan_from_dict,
    plan_to_dict,
    plan_with_overrides,
)
from repro.workloads.spec import WorkloadSpec


def template_traffic(n_sources: int = 2, interleaving: str = "round_robin") -> TrafficSpec:
    return TrafficSpec.create(
        31,
        {
            source: WorkloadSpec.create("zipf", n_elements=31, exponent=1.6)
            for source in range(n_sources)
        },
        interleaving=interleaving,
    )


def sweep_plan(**kwargs) -> TrafficSweepPlan:
    kwargs.setdefault("traffic", template_traffic())
    kwargs.setdefault("algorithms", ("rotor-push",))
    kwargs.setdefault("points", ({"k": 1}, {"k": 3}))
    kwargs.setdefault("bind", {"k": "n_sources"})
    kwargs.setdefault(
        "config", RunConfig(n_requests=40, n_trials=1, base_seed=5)
    )
    return TrafficSweepPlan(**kwargs)


class TestModelValidation:
    def test_traffic_must_be_a_spec(self):
        with pytest.raises(PlanError, match="TrafficSpec"):
            sweep_plan(traffic="not-a-spec")

    def test_bad_bind_target_rejected(self):
        with pytest.raises(PlanError, match="not a traffic field"):
            sweep_plan(bind={"k": "no_such_field"})

    def test_dangling_bind_key_rejected(self):
        with pytest.raises(PlanError, match="appear in no sweep point"):
            sweep_plan(bind={"k": "n_sources", "ghost": "interleaving"})

    def test_unbound_point_key_rejected(self):
        with pytest.raises(PlanError, match="not bound"):
            sweep_plan(points=({"k": 1, "stray": 2},))

    def test_invalid_point_rejected_eagerly(self):
        # n_sources larger than the node count: TrafficSpec would refuse it,
        # so the plan must refuse it at construction, naming the point
        with pytest.raises(PlanError, match="does not bind into a valid"):
            sweep_plan(points=({"k": 99},))

    def test_keep_records_rejected(self):
        with pytest.raises(PlanError, match="keep_records"):
            sweep_plan(
                config=RunConfig(n_requests=40, n_trials=1, keep_records=True)
            )

    def test_empty_workload_suffix_rejected(self):
        with pytest.raises(PlanError, match="workload"):
            sweep_plan(bind={"k": "workload."})


class TestBindSemantics:
    def test_n_sources_resize_cycles_the_template(self):
        plan = sweep_plan(points=({"k": 3},))
        bound = plan.bound_traffic({"k": 3})
        assert bound.source_ids() == [0, 1, 2]
        template = plan.traffic.workload_of(0)
        for source in bound.source_ids():
            assert bound.workload_of(source).kind == template.kind

    def test_workload_parameter_bind(self):
        plan = sweep_plan(
            points=({"s": 1.2}, {"s": 2.0}),
            bind={"s": "workload.exponent"},
        )
        bound = plan.bound_traffic({"s": 2.0})
        for source in bound.source_ids():
            assert bound.workload_of(source).get("exponent") == 2.0

    def test_weights_bind(self):
        plan = sweep_plan(
            traffic=template_traffic(interleaving="weighted"),
            points=({"w": {0: 1.0, 1: 0.5}},),
            bind={"w": "weights"},
        )
        bound = plan.bound_traffic(plan.point_dicts()[0])
        assert dict(bound.weights) == {0: 1.0, 1: 0.5}

    def test_interleaving_bind(self):
        plan = sweep_plan(
            points=({"mode": "round_robin"}, {"mode": "uniform_pairs"}),
            bind={"mode": "interleaving"},
        )
        assert plan.bound_traffic({"mode": "uniform_pairs"}).interleaving == (
            "uniform_pairs"
        )


class TestRoundTrip:
    def test_dict_round_trip(self):
        plan = sweep_plan()
        assert plan_from_dict(plan_to_dict(plan)) == plan

    def test_json_round_trip_with_weights_point(self):
        plan = sweep_plan(
            traffic=template_traffic(interleaving="weighted"),
            points=({"w": {0: 1.0, 1: 0.5}},),
            bind={"w": "weights"},
        )
        rebuilt = loads(dumps(plan))
        assert plan_to_dict(rebuilt) == plan_to_dict(plan)

    def test_composes_in_experiment_plan_and_round_trips(self):
        experiment = ExperimentPlan(
            name="sweep-suite",
            stages=(("a", sweep_plan()), ("b", sweep_plan(name="other"))),
            assembler="traffic_sweep",
        )
        rebuilt = loads(dumps(experiment))
        assert plan_to_dict(rebuilt) == plan_to_dict(experiment)

    def test_overrides_hit_the_config_only(self):
        plan = sweep_plan()
        overridden = plan_with_overrides(plan, n_jobs=4, n_requests=99)
        assert overridden.config.n_jobs == 4
        assert overridden.config.n_requests == 99
        assert overridden.points == plan.points
        assert overridden.traffic == plan.traffic


class TestExecution:
    def test_serial_equals_parallel(self):
        serial = repro.run(sweep_plan())
        parallel = repro.run(plan_with_overrides(sweep_plan(), n_jobs=4))
        assert serial.rows == parallel.rows

    def test_point_key_named_n_sources_does_not_collide(self):
        # the fixed n_sources column must yield to a point key of the same
        # name instead of raising a duplicate-keyword error
        plan = sweep_plan(
            points=({"n_sources": 1}, {"n_sources": 3}),
            bind={"n_sources": "n_sources"},
        )
        table = repro.run(plan)
        assert table.columns.count("n_sources") == 1
        assert [row["n_sources"] for row in table.rows] == [1, 3]

    def test_table_shape(self):
        table = repro.run(sweep_plan())
        assert table.columns[:1] == ["k"]
        assert {row["k"] for row in table.rows} == {1, 3}
        assert all(row["n_trials"] == 1 for row in table.rows)

    def test_experiment_composition_runs(self):
        experiment = ExperimentPlan(
            name="sweep-suite",
            stages=(("zipf", sweep_plan()),),
            assembler="traffic_sweep",
        )
        table = repro.run(experiment)
        assert table.columns[0] == "scenario"
        assert {row["scenario"] for row in table.rows} == {"zipf"}
