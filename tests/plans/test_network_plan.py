"""NetworkPlan: validation, round-trips, golden pins and execution identity.

The acceptance contract of the plan-native multi-source layer:

* a ``NetworkPlan`` validates eagerly with the PR-4 error conventions
  (unknown algorithm / workload names fail at construction listing the
  registered ones);
* plan documents round-trip (``dump`` → ``load`` → rerun is an identity) and
  the shipped ``multisource`` golden equals its builder;
* execution is bit-identical between ``n_jobs=1`` and ``n_jobs=4`` and equal
  to the request-by-request :class:`repro.network.MultiSourceNetwork`
  reference semantics;
* payload construction never generates a request in the parent process.
"""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import AlgorithmError, PlanError, WorkloadError
from repro.network.multi_source import MultiSourceNetwork
from repro.network.traffic import TrafficSpec
from repro.plans import (
    ExperimentPlan,
    NetworkPlan,
    RunConfig,
    dump,
    dumps,
    load,
    load_golden_plan,
    loads,
    plan_with_overrides,
)
from repro.plans.execute import NETWORK_TRIAL_SEED_STRIDE, build_network_payloads
from repro.sim.runner import TrafficSource
from repro.workloads.base import WorkloadGenerator
from repro.workloads.spec import WorkloadSpec

N_NODES = 31
N_SOURCES = 5


def small_traffic(interleaving: str = "uniform_pairs") -> TrafficSpec:
    return TrafficSpec.create(
        N_NODES,
        {
            source: WorkloadSpec.create(
                "combined-locality",
                n_elements=N_NODES,
                zipf_exponent=1.4,
                repeat_probability=0.4,
            )
            for source in range(N_SOURCES)
        },
        interleaving=interleaving,
    )


def small_plan(algorithm: str = "rotor-push", **config_kwargs) -> NetworkPlan:
    config_kwargs.setdefault("n_requests", 80)
    config_kwargs.setdefault("n_trials", 2)
    config_kwargs.setdefault("base_seed", 7)
    return NetworkPlan(
        name="net-test",
        traffic=small_traffic(),
        algorithm=algorithm,
        config=RunConfig(**config_kwargs),
    )


class TestModelValidation:
    def test_n_sources_derived_and_cross_checked(self):
        plan = small_plan()
        assert plan.n_sources == N_SOURCES
        assert plan.n_nodes == N_NODES
        assert plan.source_ids() == list(range(N_SOURCES))
        with pytest.raises(PlanError, match="declares"):
            NetworkPlan(traffic=small_traffic(), algorithm="rotor-push", n_sources=3)

    def test_unknown_algorithm_fails_eagerly_listing_names(self):
        with pytest.raises(AlgorithmError, match="rotor-push"):
            NetworkPlan(traffic=small_traffic(), algorithm="rotr-push")

    def test_traffic_must_be_a_spec(self):
        with pytest.raises(PlanError, match="TrafficSpec"):
            NetworkPlan(traffic={"n_nodes": 4}, algorithm="rotor-push")

    def test_keep_records_rejected_eagerly(self):
        # records would accumulate inside worker-side trees and never leave;
        # the plan layer refuses the silent waste up front
        with pytest.raises(PlanError, match="keep_records"):
            small_plan(keep_records=True)

    def test_config_must_be_a_run_config(self):
        with pytest.raises(PlanError, match="RunConfig"):
            NetworkPlan(
                traffic=small_traffic(), algorithm="rotor-push", config={"n_trials": 1}
            )

    def test_composes_inside_experiment_plans(self):
        experiment = ExperimentPlan(
            name="wrapped",
            stages=(("net", small_plan()),),
            assembler="trace_costs",
        )
        assert experiment.stages[0][1] == small_plan()

    def test_overrides_reach_network_configs_recursively(self):
        experiment = ExperimentPlan(
            name="wrapped",
            stages=(("net", small_plan()),),
            assembler="trace_costs",
        )
        overridden = plan_with_overrides(
            experiment, n_jobs=3, n_trials=1, n_requests=9
        )
        config = overridden.stages[0][1].config
        assert (config.n_jobs, config.n_trials, config.n_requests) == (3, 1, 9)


class TestRoundTrip:
    def test_dump_load_is_identity(self, tmp_path):
        plan = small_plan()
        path = tmp_path / "net.json"
        dump(plan, path)
        assert load(path) == plan

    def test_loads_rejects_bad_documents_eagerly(self):
        document = dumps(small_plan()).replace("rotor-push", "rotr-push")
        with pytest.raises(AlgorithmError, match="available"):
            loads(document)
        document = dumps(small_plan()).replace("combined-locality", "combined")
        with pytest.raises(WorkloadError, match="registered kinds"):
            loads(document)

    def test_golden_equals_builder(self):
        from repro.experiments.multisource import build_multisource_plan

        assert load_golden_plan("multisource") == build_multisource_plan()


class TestExecution:
    @pytest.fixture(scope="class")
    def serial_table(self):
        return repro.run(small_plan())

    def test_reference_semantics_request_by_request(self, serial_table):
        """Trial 0 must equal a hand-built network serving the materialised
        trace one request at a time — the pre-plan semantics."""
        plan = small_plan()
        traffic = plan.traffic.with_seed(plan.config.base_seed)  # trial 0
        network = MultiSourceNetwork(
            N_NODES,
            sources=traffic.source_ids(),
            algorithm="rotor-push",
            base_seed=plan.config.base_seed + 10_000,
        )
        for request in traffic.build_trace(plan.config.n_requests):
            network.serve(request.source, request.destination)
        reference = network.per_source_summary()

        single_trial = repro.run(plan_with_overrides(plan, n_trials=1))
        for row in single_trial.rows:
            if row["source"] == "total":
                continue
            summary = reference[int(row["source"])]
            assert row["n_requests"] == summary["n_requests"]
            assert row["mean_access_cost"] == pytest.approx(
                summary["average_access_cost"]
            )
            assert row["mean_total_cost"] == pytest.approx(
                summary["average_total_cost"]
            )

    def test_parallel_bit_identical_to_serial(self, serial_table):
        parallel = repro.run(plan_with_overrides(small_plan(), n_jobs=4))
        assert parallel.rows == serial_table.rows

    def test_dump_load_rerun_identity(self, tmp_path, serial_table):
        path = tmp_path / "net.json"
        dump(small_plan(), path)
        assert repro.run(load(path)).rows == serial_table.rows

    def test_table_shape(self, serial_table):
        sources = [row["source"] for row in serial_table.rows]
        assert sources == list(range(N_SOURCES)) + ["total"]
        total = serial_table.rows[-1]
        assert total["n_requests"] == N_SOURCES * 80
        assert total["mean_total_cost"] == pytest.approx(
            total["mean_access_cost"] + total["mean_adjustment_cost"]
        )

    @pytest.mark.parametrize("backend", ["python", "auto"])
    def test_backend_is_a_throughput_knob_only(self, serial_table, backend):
        table = repro.run(plan_with_overrides(small_plan(), backend=backend))
        assert table.rows == serial_table.rows

    def test_chunk_size_never_changes_results(self, serial_table):
        for chunk_size in (1, 17, 100_000):
            table = repro.run(plan_with_overrides(small_plan(), chunk_size=chunk_size))
            assert table.rows == serial_table.rows

    def test_golden_multisource_runs_end_to_end(self):
        plan = plan_with_overrides(
            load_golden_plan("multisource"), n_trials=1, n_requests=25
        )
        serial = repro.run(plan)
        parallel = repro.run(plan_with_overrides(plan, n_jobs=4))
        assert serial.rows == parallel.rows
        assert {row["scenario"] for row in serial.rows} == {"rotor-push", "max-push"}


class TestPayloads:
    def test_payloads_carry_specs_only(self):
        payloads = build_network_payloads(small_plan())
        assert len(payloads) == 2
        for trial, payload in enumerate(payloads):
            assert isinstance(payload.source, TrafficSource)
            assert payload.source.requests_per_source == 80
            assert payload.source.traffic.seed == 7 + trial
            assert (
                payload.placement_seed
                == 7 + 10_000 + trial * NETWORK_TRIAL_SEED_STRIDE
            )

    def test_trials_share_no_per_source_seed_streams(self):
        """Trial i's source s+1 must not reuse trial i+1's source-s seeds:
        the trial stride keeps every per-source seed window disjoint."""
        plan = small_plan()
        payloads = build_network_payloads(plan)
        windows = []
        for payload in payloads:
            base = payload.placement_seed
            placement = {base + s for s in range(N_SOURCES)}
            algorithm = {base + 100_000 + s for s in range(N_SOURCES)}
            windows.append(placement | algorithm)
        assert not (windows[0] & windows[1])
        # and the networks the workers build start from different placements
        first = MultiSourceNetwork(
            N_NODES, sources=range(N_SOURCES), base_seed=payloads[0].placement_seed
        )
        second = MultiSourceNetwork(
            N_NODES, sources=range(N_SOURCES), base_seed=payloads[1].placement_seed
        )
        placements = [
            first.tree_of(s).tree_algorithm.network.placement()
            for s in range(N_SOURCES)
        ] + [
            second.tree_of(s).tree_algorithm.network.placement()
            for s in range(N_SOURCES)
        ]
        assert len({tuple(p) for p in placements}) == len(placements)

    def test_parent_never_generates(self, monkeypatch):
        def forbidden(self, n_requests):
            raise AssertionError("generate() called in the parent process")

        monkeypatch.setattr(WorkloadGenerator, "generate", forbidden)
        plan = small_plan(n_requests=10**6)  # paper scale: materialising shows
        payloads = build_network_payloads(plan)
        assert all(isinstance(p.source, TrafficSource) for p in payloads)

    def test_trace_costs_assembler_rejects_non_network_stages(self):
        from repro.plans import TrialPlan

        trial = TrialPlan(
            n_nodes=N_NODES,
            workload=WorkloadSpec.create("uniform", n_elements=N_NODES),
            algorithms=("rotor-push",),
            config=RunConfig(n_requests=10, n_trials=1),
        )
        experiment = ExperimentPlan(
            name="bad", stages=(("t", trial),), assembler="trace_costs"
        )
        with pytest.raises(PlanError, match="network-plan stages"):
            repro.run(experiment)
