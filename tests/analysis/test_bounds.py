"""Tests for lower bounds and empirical competitive ratios."""

from __future__ import annotations

import pytest

from repro.algorithms import make_algorithm
from repro.analysis.bounds import (
    compute_lower_bounds,
    empirical_competitive_ratio,
    static_optimum_cost,
)
from repro.analysis.potential import ROTOR_PUSH_COMPETITIVE_RATIO
from repro.exceptions import AlgorithmError
from repro.workloads.composite import CombinedLocalityWorkload
from repro.workloads.uniform import UniformWorkload


class TestStaticOptimumCost:
    def test_single_hot_element(self):
        # 100 requests to one element: the optimal static tree stores it at the root.
        assert static_optimum_cost(15, [4] * 100) == 100.0

    def test_two_elements_share_top_levels(self):
        cost = static_optimum_cost(15, [4] * 10 + [9] * 10)
        assert cost == 10 * 1 + 10 * 2

    def test_matches_static_opt_algorithm(self):
        workload = UniformWorkload(31, seed=3)
        sequence = workload.generate(2_000)
        expected = static_optimum_cost(31, sequence)
        algorithm = make_algorithm("static-opt", n_nodes=31, placement_seed=1)
        result = algorithm.run(sequence)
        assert result.total_access_cost == pytest.approx(expected)

    def test_empty_sequence(self):
        assert static_optimum_cost(15, []) == 0.0


class TestLowerBounds:
    def test_trivial_bound_is_request_count(self):
        bounds = compute_lower_bounds(15, [1, 2, 3])
        assert bounds.trivial == 3.0

    def test_best_is_at_least_trivial(self):
        bounds = compute_lower_bounds(15, [1, 1, 1, 1])
        assert bounds.best >= bounds.trivial

    def test_working_set_bound_included(self):
        sequence = list(range(8)) * 4
        bounds = compute_lower_bounds(15, sequence)
        assert bounds.working_set > 0.0

    def test_static_bound_can_be_excluded(self):
        bounds = compute_lower_bounds(15, [1, 2], include_static=False)
        assert bounds.static_optimum == float("inf")


class TestEmpiricalCompetitiveRatio:
    def test_requires_matching_lengths(self):
        algorithm = make_algorithm("rotor-push", n_nodes=15, placement_seed=1)
        result = algorithm.run([1, 2, 3])
        with pytest.raises(AlgorithmError):
            empirical_competitive_ratio(result, [1, 2])

    def test_empty_sequence_gives_zero(self):
        algorithm = make_algorithm("rotor-push", n_nodes=15, placement_seed=1)
        result = algorithm.run([])
        assert empirical_competitive_ratio(result, []) == 0.0

    def test_ratio_is_positive_and_finite(self):
        workload = CombinedLocalityWorkload(63, 1.5, 0.5, seed=5)
        sequence = workload.generate(3_000)
        algorithm = make_algorithm("rotor-push", n_nodes=63, placement_seed=2)
        ratio = empirical_competitive_ratio(algorithm.run(sequence), sequence)
        assert 0.0 < ratio < 100.0

    def test_rotor_push_ratio_consistent_with_theorem7(self):
        """The measured cost over the WS lower bound stays within the proven 12x
        (with slack for the bound's hidden constants) on locality-rich inputs."""
        workload = CombinedLocalityWorkload(127, 1.6, 0.6, seed=9)
        sequence = workload.generate(5_000)
        algorithm = make_algorithm("rotor-push", n_nodes=127, placement_seed=3)
        ratio = empirical_competitive_ratio(algorithm.run(sequence), sequence)
        assert ratio <= ROTOR_PUSH_COMPETITIVE_RATIO

    def test_static_opt_ratio_close_to_one_on_skewed_input(self):
        sequence = [0] * 900 + [5] * 60 + [9] * 40
        algorithm = make_algorithm("static-opt", n_nodes=15, placement_seed=1)
        ratio = empirical_competitive_ratio(algorithm.run(sequence), sequence)
        assert ratio <= 2.0
