"""Tests for the credit/potential functions of the competitive analyses."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.potential import (
    ROTOR_PUSH_COMPETITIVE_RATIO,
    ROTOR_PUSH_CREDIT_FACTOR,
    PotentialTracker,
    element_credit,
    flip_rank_weight,
    level_weight,
    total_credit,
)
from repro.core import CompleteBinaryTree, TreeNetwork
from repro.exceptions import AlgorithmError


class TestWeights:
    def test_level_weight_zero_when_close_to_opt(self):
        assert level_weight(level=3, opt_level=1) == 0  # 3 < 2*1 + 2
        assert level_weight(level=2, opt_level=1) == 0

    def test_level_weight_positive_when_far_below_opt(self):
        assert level_weight(level=4, opt_level=1) == 1  # 4 - 2 - 1
        assert level_weight(level=7, opt_level=1) == 4

    def test_level_weight_equation_one(self):
        for level in range(12):
            for opt_level in range(6):
                expected = level - 2 * opt_level - 1 if level >= 2 * opt_level + 2 else 0
                assert level_weight(level, opt_level) == expected

    def test_flip_rank_weight_zero_when_close_to_opt(self):
        assert flip_rank_weight(level=2, opt_level=1, flip_rank=0) == 0.0

    def test_flip_rank_weight_equation_two(self):
        assert flip_rank_weight(level=3, opt_level=1, flip_rank=0) == pytest.approx(1.0)
        assert flip_rank_weight(level=3, opt_level=1, flip_rank=7) == pytest.approx(1 / 8)
        assert flip_rank_weight(level=3, opt_level=0, flip_rank=4) == pytest.approx(0.5)

    def test_flip_rank_weight_in_unit_interval(self):
        for level in range(1, 6):
            for rank in range(1 << level):
                assert 0.0 <= flip_rank_weight(level, 0, rank) <= 1.0

    def test_element_credit_combines_weights(self):
        credit = element_credit(level=5, opt_level=1, flip_rank=0)
        expected = ROTOR_PUSH_CREDIT_FACTOR * (level_weight(5, 1) + flip_rank_weight(5, 1, 0))
        assert credit == pytest.approx(expected)

    def test_credit_non_negative(self):
        for level in range(6):
            for opt_level in range(4):
                assert element_credit(level, opt_level, flip_rank=0) >= 0.0


class TestTotalCredit:
    def test_identical_trees_have_zero_credit(self):
        network = TreeNetwork(CompleteBinaryTree.from_depth(3), with_rotor=True)
        opt_levels = [network.tree.level(node) for node in range(15)]
        assert total_credit(network, opt_levels) == pytest.approx(0.0)

    def test_requires_rotor(self):
        network = TreeNetwork(CompleteBinaryTree.from_depth(3), with_rotor=False)
        with pytest.raises(AlgorithmError):
            total_credit(network, [0] * 15)

    def test_requires_matching_length(self):
        network = TreeNetwork(CompleteBinaryTree.from_depth(3), with_rotor=True)
        with pytest.raises(AlgorithmError):
            total_credit(network, [0, 1])

    def test_deep_misplacement_gives_positive_credit(self):
        # Every element that OPT keeps at the root but we keep at a leaf should carry credit.
        tree = CompleteBinaryTree.from_depth(3)
        network = TreeNetwork(tree, with_rotor=True)
        opt_levels = [0] * 15  # a fictional OPT that keeps everything at the root
        assert total_credit(network, opt_levels) > 0.0


class TestPotentialTracker:
    def test_rejects_non_bijective_reference(self):
        with pytest.raises(AlgorithmError):
            PotentialTracker(depth=2, reference_placement=[0] * 7)

    def test_round_checks_record_costs(self):
        tracker = PotentialTracker(depth=3)
        check = tracker.serve(11)
        assert check.element == 11
        assert check.opt_cost == 4.0  # identity reference: element 11 sits at level 3
        assert check.bound == ROTOR_PUSH_COMPETITIVE_RATIO * 4.0

    def test_amortised_inequality_on_fixed_sequence(self):
        tracker = PotentialTracker(depth=4)
        sequence = [30, 7, 30, 18, 3, 3, 30, 11, 25, 0, 14, 30]
        for check in tracker.run(sequence):
            assert check.holds
        assert tracker.all_hold()

    def test_summary_counts_rounds(self):
        tracker = PotentialTracker(depth=3)
        tracker.run([5, 9, 5, 1])
        summary = tracker.summary()
        assert summary["rounds"] == 4.0
        assert summary["violations"] == 0.0
        assert summary["max_ratio"] <= 1.0 + 1e-9

    def test_empty_summary(self):
        assert PotentialTracker(depth=2).summary()["rounds"] == 0.0

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_theorem7_inequality_holds_for_arbitrary_sequences(self, sequence):
        """Per-round amortised cost never exceeds 12x the reference (OPT) access cost."""
        tracker = PotentialTracker(depth=4)
        for check in tracker.run(sequence):
            assert check.holds

    @given(
        st.lists(st.integers(min_value=0, max_value=14), min_size=1, max_size=40),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_inequality_holds_for_shuffled_reference_placements(self, sequence, rng):
        """The per-round argument is valid for any fixed reference placement."""
        reference = list(range(15))
        rng.shuffle(reference)
        tracker = PotentialTracker(depth=3, reference_placement=reference)
        for check in tracker.run(sequence):
            assert check.holds
