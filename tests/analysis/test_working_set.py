"""Tests for ranks, working-set bound and working-set property helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.working_set import (
    FenwickTree,
    max_working_set_violation,
    mru_placement,
    ranks_of_sequence,
    working_set_bound,
    working_set_property_ratios,
)
from repro.core.cost import RequestCost
from repro.exceptions import WorkloadError


def naive_rank(sequence, position):
    """Straightforward O(m^2) reference implementation of the rank."""
    element = sequence[position]
    previous = None
    for index in range(position - 1, -1, -1):
        if sequence[index] == element:
            previous = index
            break
    if previous is None:
        return len(set(sequence[: position + 1]))
    return len(set(sequence[previous + 1 : position + 1]))


class TestFenwickTree:
    def test_prefix_sums(self):
        tree = FenwickTree(8)
        for index in (1, 3, 5):
            tree.add(index, 2)
        assert tree.prefix_sum(0) == 0
        assert tree.prefix_sum(2) == 2
        assert tree.prefix_sum(8) == 6

    def test_range_sum(self):
        tree = FenwickTree(10)
        for index in range(10):
            tree.add(index, 1)
        assert tree.range_sum(3, 7) == 4

    def test_negative_updates(self):
        tree = FenwickTree(4)
        tree.add(2, 5)
        tree.add(2, -3)
        assert tree.prefix_sum(4) == 2

    def test_out_of_range(self):
        tree = FenwickTree(4)
        with pytest.raises(WorkloadError):
            tree.add(4, 1)
        with pytest.raises(WorkloadError):
            tree.prefix_sum(5)

    def test_invalid_size(self):
        with pytest.raises(WorkloadError):
            FenwickTree(-1)


class TestRanks:
    def test_simple_sequence(self):
        # sequence: a b a c b
        sequence = [0, 1, 0, 2, 1]
        assert ranks_of_sequence(sequence) == [1, 2, 2, 3, 3]

    def test_immediate_repetition_has_rank_one(self):
        assert ranks_of_sequence([4, 4, 4]) == [1, 1, 1]

    def test_first_access_universe_mode(self):
        assert ranks_of_sequence([3, 5], first_access="universe", universe_size=100) == [
            100,
            100,
        ]

    def test_universe_mode_requires_size(self):
        with pytest.raises(WorkloadError):
            ranks_of_sequence([1], first_access="universe")

    def test_invalid_mode(self):
        with pytest.raises(WorkloadError):
            ranks_of_sequence([1], first_access="bogus")

    def test_empty_sequence(self):
        assert ranks_of_sequence([]) == []

    @given(st.lists(st.integers(min_value=0, max_value=9), max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_matches_naive_reference(self, sequence):
        fast = ranks_of_sequence(sequence)
        assert fast == [naive_rank(sequence, i) for i in range(len(sequence))]

    @given(st.lists(st.integers(min_value=0, max_value=9), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_ranks_bounded_by_distinct_count(self, sequence):
        distinct = len(set(sequence))
        for rank in ranks_of_sequence(sequence):
            assert 1 <= rank <= max(distinct, 1)


class TestWorkingSetBound:
    def test_repetitions_contribute_zero(self):
        assert working_set_bound([7] * 10) == 0.0

    def test_round_robin_bound(self):
        # Round robin over k elements: every non-first access has rank k.
        k, cycles = 8, 5
        sequence = list(range(k)) * cycles
        bound = working_set_bound(sequence)
        expected_tail = (len(sequence) - k) * math.log2(k)
        assert bound >= expected_tail

    def test_monotone_in_locality(self):
        local = working_set_bound([0, 0, 1, 1, 2, 2, 3, 3])
        spread = working_set_bound([0, 1, 2, 3, 0, 1, 2, 3])
        assert local <= spread

    def test_empty_sequence(self):
        assert working_set_bound([]) == 0.0


class TestWorkingSetProperty:
    def _records(self, access_costs):
        return [
            RequestCost(element=0, access_cost=cost, adjustment_cost=0, level_at_access=cost - 1)
            for cost in access_costs
        ]

    def test_ratios_shape(self):
        sequence = [0, 1, 0, 2]
        ratios = working_set_property_ratios(sequence, self._records([1, 2, 2, 3]))
        assert len(ratios) == 4
        assert all(r > 0 for r in ratios)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(WorkloadError):
            working_set_property_ratios([0, 1], self._records([1]))

    def test_max_violation(self):
        sequence = [0, 1, 0, 1, 0, 1]
        costs = self._records([1, 1, 6, 6, 6, 6])
        # rank of later accesses is 2, so log2(2) + 1 = 2 and the ratio is 3.
        assert max_working_set_violation(sequence, costs) == pytest.approx(3.0)

    def test_empty(self):
        assert max_working_set_violation([], []) == 0.0


class TestMRUPlacement:
    def test_most_recent_elements_first(self):
        placement = mru_placement(7, [5, 3, 5, 1])
        assert placement[0] == 1  # most recently accessed
        assert placement[1] == 5
        assert placement[2] == 3

    def test_unaccessed_elements_fill_by_identifier(self):
        placement = mru_placement(7, [6])
        assert placement[0] == 6
        assert placement[1:] == [0, 1, 2, 3, 4, 5]

    def test_is_a_permutation(self):
        placement = mru_placement(15, [3, 1, 4, 1, 5, 9, 2, 6])
        assert sorted(placement) == list(range(15))

    def test_out_of_universe_element_raises(self):
        with pytest.raises(WorkloadError):
            mru_placement(7, [10])
