"""Tests for empirical entropy, locality summaries and the complexity map."""

from __future__ import annotations

import math

import pytest

from repro.analysis.complexity_map import compressed_size, trace_complexity
from repro.analysis.entropy import (
    distinct_elements,
    empirical_entropy,
    frequency_distribution,
    locality_summary,
    repeat_fraction,
)
from repro.exceptions import WorkloadError
from repro.workloads.temporal import TemporalWorkload
from repro.workloads.zipf import ZipfWorkload


class TestEntropy:
    def test_uniform_frequencies_give_log_n(self):
        sequence = list(range(16)) * 4
        assert empirical_entropy(sequence) == pytest.approx(4.0)

    def test_single_element_gives_zero(self):
        assert empirical_entropy([3] * 50) == 0.0

    def test_empty_sequence(self):
        assert empirical_entropy([]) == 0.0

    def test_entropy_bounded_by_log_distinct(self):
        sequence = [0, 0, 0, 1, 2, 2, 3]
        assert empirical_entropy(sequence) <= math.log2(distinct_elements(sequence)) + 1e-9

    def test_frequency_distribution_sums_to_one(self):
        frequencies = frequency_distribution([1, 1, 2, 3])
        assert sum(frequencies.values()) == pytest.approx(1.0)

    def test_entropy_decreases_with_temporal_locality(self):
        low = TemporalWorkload(255, 0.0, seed=1).generate(5_000)
        high = TemporalWorkload(255, 0.9, seed=1).generate(5_000)
        assert empirical_entropy(high) < empirical_entropy(low)

    def test_entropy_decreases_with_zipf_skew(self):
        mild = ZipfWorkload(255, 1.001, seed=1).generate(5_000)
        skewed = ZipfWorkload(255, 2.2, seed=1).generate(5_000)
        assert empirical_entropy(skewed) < empirical_entropy(mild)


class TestRepeatFraction:
    def test_no_repeats(self):
        assert repeat_fraction([1, 2, 3, 4]) == 0.0

    def test_all_repeats(self):
        assert repeat_fraction([5, 5, 5, 5]) == 1.0

    def test_short_sequences(self):
        assert repeat_fraction([1]) == 0.0
        assert repeat_fraction([]) == 0.0

    def test_tracks_temporal_parameter(self):
        sequence = TemporalWorkload(255, 0.6, seed=3).generate(20_000)
        assert repeat_fraction(sequence) == pytest.approx(0.6, abs=0.05)


class TestLocalitySummary:
    def test_summary_keys(self):
        summary = locality_summary([1, 2, 2, 3])
        assert set(summary) == {"length", "distinct", "entropy_bits", "repeat_fraction"}
        assert summary["length"] == 4.0
        assert summary["distinct"] == 3.0


class TestComplexityMap:
    def test_empty_trace_rejected(self):
        with pytest.raises(WorkloadError):
            trace_complexity([])

    def test_complexities_lie_in_unit_interval(self):
        sequence = TemporalWorkload(255, 0.5, seed=2).generate(5_000)
        point = trace_complexity(sequence, universe_size=255)
        assert 0.0 <= point.temporal_complexity <= 1.0
        assert 0.0 <= point.non_temporal_complexity <= 1.0

    def test_temporal_structure_lowers_temporal_complexity(self):
        random_sequence = TemporalWorkload(255, 0.0, seed=4).generate(8_000)
        repetitive = TemporalWorkload(255, 0.9, seed=4).generate(8_000)
        random_point = trace_complexity(random_sequence, universe_size=255)
        repetitive_point = trace_complexity(repetitive, universe_size=255)
        assert repetitive_point.temporal_complexity < random_point.temporal_complexity

    def test_skew_lowers_non_temporal_complexity(self):
        uniform = ZipfWorkload(255, 1.001, seed=5).generate(8_000)
        skewed = ZipfWorkload(255, 2.2, seed=5).generate(8_000)
        uniform_point = trace_complexity(uniform, universe_size=255)
        skewed_point = trace_complexity(skewed, universe_size=255)
        assert skewed_point.non_temporal_complexity < uniform_point.non_temporal_complexity

    def test_uniform_trace_has_high_complexities(self):
        uniform = ZipfWorkload(255, 1.001, seed=6).generate(8_000)
        point = trace_complexity(uniform, universe_size=255)
        assert point.temporal_complexity > 0.8
        assert point.non_temporal_complexity > 0.7

    def test_reproducible_given_seed(self):
        sequence = TemporalWorkload(255, 0.5, seed=7).generate(4_000)
        first = trace_complexity(sequence, universe_size=255, seed=1)
        second = trace_complexity(sequence, universe_size=255, seed=1)
        assert first == second

    def test_compressed_size_positive(self):
        assert compressed_size([1, 2, 3, 4]) > 0

    def test_invalid_universe(self):
        with pytest.raises(WorkloadError):
            trace_complexity([1, 2], universe_size=0)
