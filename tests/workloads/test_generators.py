"""Tests for the uniform, temporal, Zipf, combined, mixture and Markov workloads."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.entropy import empirical_entropy, repeat_fraction
from repro.exceptions import WorkloadError
from repro.workloads import (
    CombinedLocalityWorkload,
    MarkovWorkload,
    MixtureWorkload,
    SequenceWorkload,
    TemporalWorkload,
    UniformWorkload,
    ZipfWorkload,
)
from repro.workloads.temporal import apply_temporal_locality
from repro.workloads.zipf import zipf_probabilities


class TestBaseValidation:
    def test_universe_must_be_positive(self):
        with pytest.raises(WorkloadError):
            UniformWorkload(0)

    def test_negative_request_count_rejected(self):
        with pytest.raises(WorkloadError):
            UniformWorkload(10, seed=1).generate(-1)

    def test_parameters_reported(self):
        workload = UniformWorkload(10, seed=7)
        params = workload.parameters()
        assert params["workload"] == "uniform"
        assert params["n_elements"] == 10
        assert params["seed"] == 7

    def test_reseed_restores_reproducibility(self):
        workload = UniformWorkload(50, seed=1)
        first = workload.generate(100)
        workload.reseed(1)
        assert workload.generate(100) == first


class TestUniform:
    def test_length_and_range(self):
        sequence = UniformWorkload(40, seed=2).generate(1_000)
        assert len(sequence) == 1_000
        assert all(0 <= element < 40 for element in sequence)

    def test_reproducible(self):
        assert UniformWorkload(40, seed=5).generate(200) == UniformWorkload(
            40, seed=5
        ).generate(200)

    def test_covers_the_universe(self):
        sequence = UniformWorkload(20, seed=3).generate(2_000)
        assert len(set(sequence)) == 20

    def test_zero_requests(self):
        assert UniformWorkload(10, seed=1).generate(0) == []


class TestTemporal:
    def test_invalid_probability(self):
        with pytest.raises(WorkloadError):
            TemporalWorkload(10, 1.5)
        with pytest.raises(WorkloadError):
            TemporalWorkload(10, -0.1)

    def test_zero_probability_changes_nothing_statistically(self):
        sequence = TemporalWorkload(255, 0.0, seed=4).generate(5_000)
        assert repeat_fraction(sequence) < 0.05

    def test_repeat_fraction_tracks_p(self):
        for probability in (0.3, 0.6, 0.9):
            sequence = TemporalWorkload(255, probability, seed=4).generate(20_000)
            assert repeat_fraction(sequence) == pytest.approx(probability, abs=0.03)

    def test_entropy_decreases_with_p(self):
        entropies = [
            empirical_entropy(TemporalWorkload(255, p, seed=4).generate(10_000))
            for p in (0.0, 0.45, 0.9)
        ]
        assert entropies[0] > entropies[1] > entropies[2]

    def test_post_processing_helper_keeps_first_request(self):
        import random

        base = [1, 2, 3, 4]
        processed = apply_temporal_locality(base, 1.0, random.Random(0))
        assert processed == [1, 1, 1, 1]

    def test_post_processing_invalid_probability(self):
        import random

        with pytest.raises(WorkloadError):
            apply_temporal_locality([1], 2.0, random.Random(0))

    def test_custom_base_workload(self):
        base = ZipfWorkload(127, 2.0, seed=1)
        workload = TemporalWorkload(127, 0.5, seed=2, base=base)
        sequence = workload.generate(5_000)
        assert repeat_fraction(sequence) >= 0.4

    def test_base_universe_must_match(self):
        with pytest.raises(WorkloadError):
            TemporalWorkload(127, 0.5, base=ZipfWorkload(63, 2.0))


class TestZipf:
    def test_invalid_exponent(self):
        with pytest.raises(WorkloadError):
            ZipfWorkload(10, 0.0)

    def test_probabilities_sum_to_one(self):
        # plain sum() works for both the NumPy vector and the list fallback
        probabilities = zipf_probabilities(100, 1.5)
        assert sum(probabilities) == pytest.approx(1.0)

    def test_probabilities_are_decreasing(self):
        probabilities = zipf_probabilities(50, 1.2)
        assert all(probabilities[i] >= probabilities[i + 1] for i in range(49))

    def test_probability_of_rank(self):
        workload = ZipfWorkload(100, 2.0, seed=1)
        assert workload.probability_of_rank(1) > workload.probability_of_rank(10)
        with pytest.raises(WorkloadError):
            workload.probability_of_rank(0)

    def test_higher_exponent_concentrates_requests(self):
        mild = ZipfWorkload(255, 1.001, seed=2).generate(10_000)
        skewed = ZipfWorkload(255, 2.2, seed=2).generate(10_000)
        assert len(set(skewed)) < len(set(mild))

    def test_permutation_spreads_popular_identifiers(self):
        workload = ZipfWorkload(255, 2.2, seed=3, permute_identifiers=True)
        sequence = workload.generate(5_000)
        most_common = max(set(sequence), key=sequence.count)
        plain = ZipfWorkload(255, 2.2, seed=3, permute_identifiers=False)
        plain_sequence = plain.generate(5_000)
        assert max(set(plain_sequence), key=plain_sequence.count) == 0
        assert 0 <= most_common < 255

    def test_reproducible(self):
        assert ZipfWorkload(63, 1.5, seed=9).generate(500) == ZipfWorkload(
            63, 1.5, seed=9
        ).generate(500)


class TestCombinedAndMixture:
    def test_combined_has_both_kinds_of_locality(self):
        workload = CombinedLocalityWorkload(255, 2.0, 0.7, seed=5)
        sequence = workload.generate(10_000)
        assert repeat_fraction(sequence) >= 0.6
        assert empirical_entropy(sequence) < 6.0

    def test_combined_invalid_probability(self):
        with pytest.raises(WorkloadError):
            CombinedLocalityWorkload(255, 2.0, 1.5)

    def test_mixture_requires_components(self):
        with pytest.raises(WorkloadError):
            MixtureWorkload(10, [])

    def test_mixture_universe_must_match(self):
        with pytest.raises(WorkloadError):
            MixtureWorkload(10, [UniformWorkload(20, seed=1)])

    def test_mixture_weights_validated(self):
        with pytest.raises(WorkloadError):
            MixtureWorkload(10, [UniformWorkload(10, seed=1)], weights=[0.0])

    def test_mixture_generates_from_all_components(self):
        hot = SequenceWorkload(10, [0] * 1_000)
        cold = SequenceWorkload(10, [9] * 1_000)
        mixture = MixtureWorkload(10, [hot, cold], weights=[1.0, 1.0], seed=3)
        sequence = mixture.generate(500)
        assert set(sequence) == {0, 9}

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_generated_length_matches_request(self, n_requests):
        workload = CombinedLocalityWorkload(63, 1.5, 0.5, seed=1)
        assert len(workload.generate(n_requests)) == n_requests


class TestMarkov:
    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            MarkovWorkload(10, n_neighbours=0)
        with pytest.raises(WorkloadError):
            MarkovWorkload(10, self_loop=0.8, neighbour_probability=0.5)

    def test_sequence_in_range(self):
        sequence = MarkovWorkload(40, seed=2).generate(2_000)
        assert all(0 <= element < 40 for element in sequence)

    def test_self_loop_creates_repetitions(self):
        clingy = MarkovWorkload(255, self_loop=0.8, neighbour_probability=0.1, seed=3)
        sequence = clingy.generate(10_000)
        assert repeat_fraction(sequence) >= 0.7

    def test_reproducible(self):
        assert MarkovWorkload(63, seed=4).generate(500) == MarkovWorkload(
            63, seed=4
        ).generate(500)

    def test_zero_requests(self):
        assert MarkovWorkload(10, seed=1).generate(0) == []


class TestSequenceWorkload:
    def test_replays_fixed_trace(self):
        workload = SequenceWorkload(10, [1, 2, 3])
        assert workload.generate(2) == [1, 2]
        assert workload.generate(10) == [1, 2, 3]
        assert workload.full_sequence() == [1, 2, 3]

    def test_rejects_out_of_universe(self):
        with pytest.raises(WorkloadError):
            SequenceWorkload(3, [5])
