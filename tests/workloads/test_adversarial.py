"""Tests for the adversarial constructions (Lemma 8 and the MTF lower bound)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.working_set import max_working_set_violation, ranks_of_sequence
from repro.core import CompleteBinaryTree
from repro.exceptions import WorkloadError
from repro.workloads.adversarial import (
    MoveToFrontLowerBoundAdversary,
    RotorPushWorkingSetAdversary,
    round_robin_path_sequence,
    working_set_adversary_nodes,
)


class TestNodeSet:
    def test_size_is_2x_minus_1(self):
        for depth in range(1, 7):
            tree = CompleteBinaryTree.from_depth(depth)
            assert len(working_set_adversary_nodes(tree)) == 2 * (depth + 1) - 1

    def test_contains_root_and_leftmost_pairs(self):
        tree = CompleteBinaryTree.from_depth(3)
        nodes = working_set_adversary_nodes(tree)
        assert 0 in nodes
        assert {1, 2, 3, 4, 7, 8} <= nodes
        assert 5 not in nodes


class TestRoundRobinSequence:
    def test_cycles_through_path_elements(self):
        sequence = round_robin_path_sequence(3, 8)
        assert sequence == [7, 3, 1, 0, 7, 3, 1, 0]

    def test_invalid_arguments(self):
        with pytest.raises(WorkloadError):
            round_robin_path_sequence(-1, 5)
        with pytest.raises(WorkloadError):
            round_robin_path_sequence(3, -5)

    def test_depth_zero(self):
        assert round_robin_path_sequence(0, 3) == [0, 0, 0]


class TestRotorPushAdversary:
    def test_requests_confined_to_target_elements(self):
        adversary = RotorPushWorkingSetAdversary(depth=4)
        sequence = adversary.generate(300)
        # The requested elements all started on nodes of S (identity placement),
        # and the push-downs keep them within a bounded population.
        assert len(set(sequence)) <= 4 * (4 + 1)

    def test_working_set_stays_small(self):
        adversary = RotorPushWorkingSetAdversary(depth=5)
        sequence = adversary.generate(800)
        limit = 2 * (5 + 1) - 1
        ranks = ranks_of_sequence(sequence)
        # After the warm-up phase the rank never exceeds the |S| bound of the lemma.
        assert max(ranks[limit:]) <= limit

    def test_access_cost_reaches_tree_depth(self):
        """Lemma 8: the access cost of some request reaches the full depth."""
        depth = 6
        adversary = RotorPushWorkingSetAdversary(depth=depth)
        _, costs = adversary.generate_with_costs(3_000)
        assert max(record.access_cost for record in costs) >= depth

    def test_violation_ratio_grows_with_depth(self):
        """Access cost / log(working set) grows roughly linearly in the depth."""
        ratios = []
        for depth in (4, 8):
            adversary = RotorPushWorkingSetAdversary(depth=depth)
            sequence, costs = adversary.generate_with_costs(2_500)
            ratios.append(max_working_set_violation(sequence, costs))
        assert ratios[1] > ratios[0] * 1.4

    def test_random_push_has_no_such_violation_on_small_working_sets(self):
        """Requests confined to a small element set stay cheap for Random-Push."""
        from repro.algorithms import RandomPush
        from repro.core import TreeNetwork

        depth = 6
        tree = CompleteBinaryTree.from_depth(depth)
        algorithm = RandomPush(TreeNetwork(tree), seed=5)
        working_set = list(range(2 * (depth + 1) - 1))
        costs = []
        for index in range(3_000):
            costs.append(algorithm.serve(working_set[index % len(working_set)]).access_cost)
        steady = costs[len(working_set) * 3 :]
        average = sum(steady) / len(steady)
        # The working set has ~13 elements, so costs should stay close to
        # log2(13) + 1, far below the tree depth of 6 that Rotor-Push reaches.
        assert average <= math.log2(len(working_set)) + 2.5

    def test_parameters(self):
        adversary = RotorPushWorkingSetAdversary(depth=3)
        params = adversary.parameters()
        assert params["depth"] == 3
        assert params["target_set_size"] == 7


class TestMTFAdversary:
    def test_generated_requests_are_leaf_elements(self):
        adversary = MoveToFrontLowerBoundAdversary(depth=4)
        sequence, costs = adversary.generate_with_costs(100)
        assert len(sequence) == 100
        # Every access after the first pays the full depth.
        assert all(record.access_cost == 5 for record in costs[1:])

    def test_matches_non_adaptive_round_robin(self):
        depth = 4
        adaptive = MoveToFrontLowerBoundAdversary(depth=depth).generate(40)
        static = round_robin_path_sequence(depth, 40)
        assert adaptive == static

    def test_generate_without_costs(self):
        assert len(MoveToFrontLowerBoundAdversary(depth=3).generate(10)) == 10
