"""WorkloadSpec protocol, streaming generation and the reseed contract.

Three guarantees are pinned for *every* registered workload kind:

* **spec round-trip** — ``build_workload(spec)`` reproduces the generator:
  same spec back out, same parameters, same generated stream;
* **streaming equality** — ``iter_requests(n, chunk)`` concatenates to exactly
  ``generate(n)`` for any chunk size;
* **reseed regression** — ``g.reseed(s); g.generate(n)`` equals a freshly
  constructed generator with seed ``s``, including all derived RNG state
  (NumPy streams, identifier permutations, nested components, lazy caches).
"""

from __future__ import annotations

import pickle
from itertools import chain

import pytest

from repro.exceptions import WorkloadError
from repro.workloads import (
    CombinedLocalityWorkload,
    MarkovWorkload,
    MixtureWorkload,
    SequenceWorkload,
    TemporalWorkload,
    UniformWorkload,
    WorkloadSpec,
    ZipfWorkload,
    build_workload,
    registered_kinds,
)
from repro.workloads.corpus import CorpusWorkload

N_REQUESTS = 600

#: One representative constructor per registered kind (plus nested variants).
FACTORIES = {
    "uniform": lambda: UniformWorkload(63, seed=11),
    "zipf": lambda: ZipfWorkload(63, 1.6, seed=11),
    "zipf-unpermuted": lambda: ZipfWorkload(63, 1.6, seed=11, permute_identifiers=False),
    "temporal": lambda: TemporalWorkload(63, 0.6, seed=11),
    "temporal-nested": lambda: TemporalWorkload(
        63, 0.6, seed=11, base=ZipfWorkload(63, 2.0, seed=4)
    ),
    "combined-locality": lambda: CombinedLocalityWorkload(63, 1.6, 0.5, seed=11),
    "markov": lambda: MarkovWorkload(63, seed=11),
    "mixture": lambda: MixtureWorkload(
        63,
        [UniformWorkload(63, seed=1), ZipfWorkload(63, 2.0, seed=2)],
        weights=[1.0, 2.0],
        seed=11,
    ),
    "fixed-sequence": lambda: SequenceWorkload(63, list(range(60)) * 12),
}


@pytest.fixture(params=sorted(FACTORIES))
def factory(request):
    return FACTORIES[request.param]


class TestSpecRoundTrip:
    def test_registry_covers_all_core_kinds(self):
        assert set(registered_kinds()) >= {
            "combined-locality",
            "fixed-sequence",
            "markov",
            "mixture",
            "temporal",
            "uniform",
            "zipf",
        }

    def test_spec_build_spec_round_trip(self, factory):
        spec = factory().to_spec()
        assert spec is not None
        rebuilt = build_workload(spec)
        assert rebuilt.to_spec() == spec

    def test_build_reproduces_the_stream(self, factory):
        expected = factory().generate(N_REQUESTS)
        assert build_workload(factory().to_spec()).generate(N_REQUESTS) == expected

    def test_build_reproduces_parameters(self, factory):
        workload = factory()
        rebuilt = build_workload(workload.to_spec())
        if not isinstance(workload, CorpusWorkload):
            assert rebuilt.parameters() == workload.parameters()

    def test_spec_is_hashable_and_picklable(self, factory):
        spec = factory().to_spec()
        assert hash(spec) == hash(factory().to_spec())
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_spec_taken_before_generation_is_pristine(self, factory):
        workload = factory()
        spec = workload.to_spec()
        workload.generate(N_REQUESTS)  # consume RNG state
        # the earlier spec still describes the *fresh* generator
        assert build_workload(spec).generate(N_REQUESTS) == factory().generate(N_REQUESTS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(WorkloadError):
            build_workload(WorkloadSpec.create("no-such-kind", n_elements=3))

    def test_to_dict_is_json_friendly(self):
        spec = FACTORIES["mixture"]().to_spec()
        as_dict = spec.to_dict()
        assert as_dict["kind"] == "mixture"
        assert as_dict["params"]["components"][0]["kind"] in {"uniform", "zipf"}

    def test_corpus_ships_as_fixed_sequence(self):
        corpus = CorpusWorkload("book", "abcabcabcadbcabffg" * 4)
        spec = corpus.to_spec()
        assert spec.kind == "fixed-sequence"
        assert build_workload(spec).generate(20) == corpus.generate(20)


class TestStreaming:
    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 600, 10_000])
    def test_chunked_stream_equals_generate(self, factory, chunk_size):
        expected = factory().generate(N_REQUESTS)
        streamed = list(
            chain.from_iterable(factory().iter_requests(N_REQUESTS, chunk_size))
        )
        assert streamed == expected

    def test_zero_requests_yields_nothing(self, factory):
        assert list(factory().iter_requests(0)) == []

    def test_invalid_chunk_size_rejected(self, factory):
        with pytest.raises(WorkloadError):
            list(factory().iter_requests(10, 0))

    def test_negative_request_count_rejected(self, factory):
        with pytest.raises(WorkloadError):
            list(factory().iter_requests(-1))

    def test_chunk_lengths_sum_to_request_count(self, factory):
        chunks = list(factory().iter_requests(N_REQUESTS, 128))
        assert sum(len(chunk) for chunk in chunks) == N_REQUESTS
        assert all(len(chunk) <= 128 for chunk in chunks)


class TestReseedRegression:
    def test_reseed_equals_fresh_generator(self, factory):
        expected = factory().generate(N_REQUESTS)
        workload = factory()
        workload.generate(N_REQUESTS)  # advance every RNG stream
        workload.reseed(workload.seed)
        assert workload.generate(N_REQUESTS) == expected

    def test_reseed_to_other_seed_matches_fresh_construction(self):
        # same constructor parameters, different seed: reseeding must land on
        # exactly the stream a fresh generator with that seed produces
        fresh = ZipfWorkload(63, 1.6, seed=77).generate(N_REQUESTS)
        workload = ZipfWorkload(63, 1.6, seed=11)
        workload.generate(50)
        workload.reseed(77)
        assert workload.generate(N_REQUESTS) == fresh

    def test_zipf_permutation_is_reseeded(self):
        workload = ZipfWorkload(63, 2.2, seed=5)
        permutation = list(workload._identifier_of_rank)
        workload.generate(200)
        workload.reseed(5)
        assert list(workload._identifier_of_rank) == permutation

    def test_markov_neighbour_cache_is_cleared(self):
        workload = MarkovWorkload(63, seed=5)
        workload.generate(500)
        assert workload._neighbours  # cache was populated by the walk
        workload.reseed(5)
        assert not workload._neighbours

    def test_reseed_after_streaming(self, factory):
        expected = factory().generate(N_REQUESTS)
        workload = factory()
        list(workload.iter_requests(N_REQUESTS, 50))
        workload.reseed(workload.seed)
        assert workload.generate(N_REQUESTS) == expected


class _CountingSequence(SequenceWorkload):
    """Fixed trace that records how many requests it was asked to generate."""

    def __init__(self, n_elements, sequence):
        super().__init__(n_elements, sequence)
        self.generated = 0

    def generate(self, n_requests):
        self.generated += n_requests
        return super().generate(n_requests)


class TestMixtureConsumption:
    def test_components_generate_only_their_share(self):
        hot = _CountingSequence(10, [0] * 1_000)
        cold = _CountingSequence(10, [9] * 1_000)
        mixture = MixtureWorkload(10, [hot, cold], weights=[1.0, 1.0], seed=3)
        sequence = mixture.generate(500)
        # per-component counts sum to the request count: no k-times overdraw
        assert hot.generated + cold.generated == 500
        assert hot.generated == sequence.count(0)
        assert cold.generated == sequence.count(9)

    def test_mixture_streaming_matches_generate(self):
        def make():
            return MixtureWorkload(
                31,
                [UniformWorkload(31, seed=1), MarkovWorkload(31, seed=2)],
                weights=[2.0, 1.0],
                seed=9,
            )

        expected = make().generate(400)
        streamed = list(chain.from_iterable(make().iter_requests(400, 37)))
        assert streamed == expected
