"""Tests for the synthetic corpus and the sliding-window corpus pipeline."""

from __future__ import annotations

import pytest

from repro.exceptions import WorkloadError
from repro.workloads.corpus import (
    CorpusWorkload,
    next_complete_size,
    sliding_window_tokens,
    synthetic_corpus_workloads,
    tokens_to_requests,
)
from repro.workloads.synthetic_text import (
    DEFAULT_BOOK_SPECS,
    generate_book,
    synthetic_corpus,
)


class TestSlidingWindow:
    def test_tokens_slide_by_one_character(self):
        assert sliding_window_tokens("abcde", window=3) == ["abc", "bcd", "cde"]

    def test_short_text_gives_no_tokens(self):
        assert sliding_window_tokens("ab", window=3) == []

    def test_invalid_window(self):
        with pytest.raises(WorkloadError):
            sliding_window_tokens("abc", window=0)

    def test_tokens_to_requests_assigns_dense_ids(self):
        requests, vocabulary = tokens_to_requests(["abc", "bcd", "abc"])
        assert requests == [0, 1, 0]
        assert vocabulary == {"abc": 0, "bcd": 1}


class TestNextCompleteSize:
    def test_exact_sizes_are_kept(self):
        assert next_complete_size(7) == 7
        assert next_complete_size(15) == 15

    def test_padding_up(self):
        assert next_complete_size(8) == 15
        assert next_complete_size(5_000) == 8_191

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            next_complete_size(0)


class TestSyntheticBooks:
    def test_books_are_deterministic(self):
        assert generate_book(seed=1, n_words=200).text == generate_book(seed=1, n_words=200).text

    def test_different_seeds_differ(self):
        assert generate_book(seed=1, n_words=200).text != generate_book(seed=2, n_words=200).text

    def test_word_count_matches(self):
        book = generate_book(seed=3, n_words=500)
        assert book.n_words == 500
        assert len(book.text.split()) == 500

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            generate_book(seed=1, n_words=0)
        with pytest.raises(WorkloadError):
            generate_book(seed=1, vocabulary_size=2)
        with pytest.raises(WorkloadError):
            generate_book(seed=1, reuse_probability=1.5)

    def test_corpus_has_five_default_books(self):
        corpus = synthetic_corpus(scale=0.02)
        assert len(corpus) == 5
        assert len({book.title for book in corpus}) == 5

    def test_corpus_scale_shrinks_books(self):
        small = synthetic_corpus(scale=0.02)[0]
        large = synthetic_corpus(scale=0.05)[0]
        assert len(small.text) < len(large.text)

    def test_corpus_rejects_bad_arguments(self):
        with pytest.raises(WorkloadError):
            synthetic_corpus(scale=0.0)
        with pytest.raises(WorkloadError):
            synthetic_corpus(n_books=10)

    def test_default_specs_have_varied_lengths(self):
        lengths = [spec["n_words"] for spec in DEFAULT_BOOK_SPECS]
        assert len(set(lengths)) > 1


class TestCorpusWorkload:
    def test_built_from_text(self):
        workload = CorpusWorkload("mini", "hello world, hello again")
        sequence = workload.full_sequence()
        assert len(sequence) == len("hello world, hello again") - 2
        assert workload.n_distinct == len(set(sliding_window_tokens("hello world, hello again")))

    def test_universe_padded_to_complete_size(self):
        workload = CorpusWorkload("mini", "hello world, hello again")
        assert next_complete_size(workload.n_distinct) == workload.n_elements

    def test_text_shorter_than_window_rejected(self):
        with pytest.raises(WorkloadError):
            CorpusWorkload("tiny", "ab")

    def test_from_file(self, tmp_path):
        path = tmp_path / "book.txt"
        path.write_text("the quick brown fox jumps over the lazy dog")
        workload = CorpusWorkload.from_file(str(path))
        assert workload.title == "book.txt"
        assert len(workload.full_sequence()) > 0

    def test_synthetic_corpus_workloads(self):
        workloads = synthetic_corpus_workloads(n_books=2, scale=0.02)
        assert len(workloads) == 2
        for workload in workloads:
            assert workload.n_distinct <= workload.n_elements
            assert len(workload.full_sequence()) > 100

    def test_parameters_include_padding_information(self):
        workload = synthetic_corpus_workloads(n_books=1, scale=0.02)[0]
        params = workload.parameters()
        assert params["padded_universe"] == workload.n_elements
        assert params["n_distinct_tokens"] == workload.n_distinct

    def test_sequences_are_runnable_by_algorithms(self):
        from repro.algorithms import make_algorithm

        workload = synthetic_corpus_workloads(n_books=1, scale=0.02)[0]
        sequence = workload.full_sequence()[:2_000]
        algorithm = make_algorithm("rotor-push", n_nodes=workload.n_elements, placement_seed=1)
        result = algorithm.run(sequence)
        assert result.n_requests == len(sequence)
