"""Tests for saving and loading request traces."""

from __future__ import annotations

import pytest

from repro.exceptions import WorkloadError
from repro.workloads import UniformWorkload, load_trace, load_trace_workload, save_trace


class TestSaveAndLoad:
    def test_text_roundtrip(self, tmp_path):
        sequence = UniformWorkload(63, seed=1).generate(500)
        path = save_trace(
            str(tmp_path / "trace.txt"), sequence, 63, metadata={"seed": 1}, fmt="text"
        )
        loaded, n_elements, metadata = load_trace(str(path))
        assert loaded == sequence
        assert n_elements == 63
        assert metadata == {"seed": 1}

    def test_json_roundtrip(self, tmp_path):
        sequence = [1, 2, 3, 2, 1]
        path = save_trace(str(tmp_path / "trace.json"), sequence, 7, fmt="json")
        loaded, n_elements, metadata = load_trace(str(path))
        assert loaded == sequence
        assert n_elements == 7
        assert metadata == {}

    def test_load_as_workload(self, tmp_path):
        sequence = [5, 5, 1, 0]
        path = save_trace(str(tmp_path / "trace.txt"), sequence, 7)
        workload = load_trace_workload(str(path))
        assert workload.full_sequence() == sequence
        assert workload.n_elements == 7

    def test_loaded_trace_is_runnable(self, tmp_path):
        from repro.algorithms import make_algorithm

        sequence = UniformWorkload(31, seed=2).generate(200)
        path = save_trace(str(tmp_path / "trace.txt"), sequence, 31)
        workload = load_trace_workload(str(path))
        algorithm = make_algorithm("rotor-push", n_nodes=31, placement_seed=1)
        result = algorithm.run(workload.full_sequence())
        assert result.n_requests == 200

    def test_directories_are_created(self, tmp_path):
        path = save_trace(str(tmp_path / "nested" / "dir" / "trace.txt"), [0, 1], 3)
        assert path.exists()


class TestValidation:
    def test_save_rejects_out_of_universe_elements(self, tmp_path):
        with pytest.raises(WorkloadError):
            save_trace(str(tmp_path / "t.txt"), [9], 3)

    def test_save_rejects_bad_universe(self, tmp_path):
        with pytest.raises(WorkloadError):
            save_trace(str(tmp_path / "t.txt"), [0], 0)

    def test_save_rejects_unknown_format(self, tmp_path):
        with pytest.raises(WorkloadError):
            save_trace(str(tmp_path / "t.bin"), [0], 3, fmt="binary")

    def test_load_rejects_file_without_header(self, tmp_path):
        path = tmp_path / "garbage.txt"
        path.write_text("1\n2\n3\n")
        with pytest.raises(WorkloadError):
            load_trace(str(path))

    def test_load_rejects_inconsistent_universe(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"n_elements": 2, "length": 1, "metadata": {}, "sequence": [5]}')
        with pytest.raises(WorkloadError):
            load_trace(str(path))
