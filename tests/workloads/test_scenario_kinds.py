"""Scenario-library workload kinds: corpus, trace_file, round_robin_path, adversaries.

The spec→plan contract for every kind the scenario library registers:

* **spec round-trip** — building the spec reproduces the generator and its
  stream, bit for bit;
* **streaming equality** — ``iter_requests`` concatenates to ``generate``
  for any chunk size (chunk size is a memory knob, never semantics);
* **recipe fidelity** — ``corpus`` recipe specs rebuild exactly the
  workloads of :func:`synthetic_corpus_workloads`; ``trace_file`` specs
  replay a dump with its header metadata and refuse content drift;
* **adversary registry** — :class:`AdversarySpec` is validated at
  construction, JSON round-trips, and builds fresh adversary instances.
"""

from __future__ import annotations

from itertools import chain

import pytest

from repro.exceptions import WorkloadError
from repro.workloads import (
    AdversarySpec,
    MoveToFrontLowerBoundAdversary,
    RotorPushWorkingSetAdversary,
    RoundRobinPathWorkload,
    TraceFileWorkload,
    WorkloadSpec,
    build_adversary,
    build_workload,
    check_adversary_kind,
    registered_adversary_kinds,
    registered_kinds,
    synthetic_corpus_specs,
    trace_digest,
)
from repro.workloads.corpus import CorpusWorkload, synthetic_corpus_workloads
from repro.workloads.trace_io import load_trace_workload, save_trace


class TestRegistry:
    def test_scenario_kinds_are_registered(self):
        assert set(registered_kinds()) >= {
            "corpus",
            "round_robin_path",
            "trace_file",
        }

    def test_adversary_kinds_are_registered(self):
        assert set(registered_adversary_kinds()) >= {
            "mtf-lower-bound",
            "rotor-working-set",
        }


class TestCorpusKind:
    def test_synthetic_specs_rebuild_the_workloads(self):
        workloads = synthetic_corpus_workloads(n_books=3, scale=0.15)
        specs = synthetic_corpus_specs(n_books=3, scale=0.15)
        assert len(specs) == len(workloads)
        for spec, workload in zip(specs, workloads):
            rebuilt = build_workload(spec)
            assert rebuilt.title == workload.title
            assert rebuilt.n_elements == workload.n_elements
            assert rebuilt.full_sequence() == workload.full_sequence()

    def test_file_backed_spec(self, tmp_path):
        book = tmp_path / "book.txt"
        book.write_text("the quick brown fox jumps over the lazy dog " * 20)
        direct = CorpusWorkload.from_file(str(book))
        spec = WorkloadSpec.create("corpus", path=str(book), window=3)
        rebuilt = build_workload(spec)
        assert rebuilt.full_sequence() == direct.full_sequence()
        assert rebuilt.n_elements == direct.n_elements

    def test_streaming_equals_materialised(self):
        spec = synthetic_corpus_specs(n_books=1, scale=0.1)[0]
        expected = build_workload(spec).generate(500)
        for chunk_size in (1, 7, 64, 10_000):
            streamed = list(
                chain.from_iterable(
                    build_workload(spec).iter_requests(500, chunk_size)
                )
            )
            assert streamed == expected

    def test_spec_without_path_or_book_seed_rejected(self):
        with pytest.raises(WorkloadError, match="path.*book_seed|book_seed"):
            build_workload(WorkloadSpec.create("corpus", window=3))


class TestTraceFileKind:
    def save(self, tmp_path, fmt="text"):
        sequence = [0, 1, 2, 1, 0, 3, 2, 1] * 25
        return save_trace(
            str(tmp_path / f"trace.{fmt}"),
            sequence,
            n_elements=7,
            metadata={"generator": "unit-test", "seed": 5},
            fmt=fmt,
        ), sequence

    @pytest.mark.parametrize("fmt", ["text", "json"])
    def test_metadata_round_trips(self, tmp_path, fmt):
        path, _ = self.save(tmp_path, fmt)
        workload = load_trace_workload(str(path))
        assert workload.metadata == {"generator": "unit-test", "seed": 5}
        assert workload.parameters()["metadata"]["generator"] == "unit-test"

    def test_spec_round_trip(self, tmp_path):
        path, sequence = self.save(tmp_path)
        workload = load_trace_workload(str(path))
        spec = workload.to_spec()
        assert spec.kind == "trace_file"
        assert spec.get("sha256") == trace_digest(sequence, 7)
        rebuilt = build_workload(spec)
        assert rebuilt.to_spec() == spec
        assert rebuilt.generate(200) == workload.generate(200)
        assert rebuilt.metadata == workload.metadata

    def test_spec_json_round_trip(self, tmp_path):
        path, _ = self.save(tmp_path)
        spec = load_trace_workload(str(path)).to_spec()
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec

    def test_streaming_equals_materialised(self, tmp_path):
        path, _ = self.save(tmp_path)
        expected = load_trace_workload(str(path)).generate(150)
        streamed = list(
            chain.from_iterable(
                load_trace_workload(str(path)).iter_requests(150, 13)
            )
        )
        assert streamed == expected

    def test_content_drift_is_refused(self, tmp_path):
        path, sequence = self.save(tmp_path)
        spec = load_trace_workload(str(path)).to_spec()
        save_trace(str(path), sequence[:10], n_elements=7)  # overwrite
        with pytest.raises(WorkloadError, match="changed since its spec"):
            build_workload(spec)

    def test_declared_universe_mismatch_is_refused(self, tmp_path):
        path, _ = self.save(tmp_path)
        spec = WorkloadSpec.create("trace_file", path=str(path), n_elements=99)
        with pytest.raises(WorkloadError, match="universe"):
            build_workload(spec)

    def test_digest_mismatch_message_names_the_file(self, tmp_path):
        path, _ = self.save(tmp_path)
        with pytest.raises(WorkloadError, match="trace"):
            TraceFileWorkload(str(path), expected_sha256="0" * 64)


class TestRoundRobinPathKind:
    def test_spec_round_trip(self):
        workload = RoundRobinPathWorkload(4)
        spec = workload.to_spec()
        assert spec.kind == "round_robin_path"
        rebuilt = build_workload(spec)
        assert rebuilt.to_spec() == spec
        assert rebuilt.generate(100) == workload.generate(100)

    @pytest.mark.parametrize("chunk_size", [1, 3, 50, 1_000])
    def test_streaming_equals_materialised(self, chunk_size):
        expected = RoundRobinPathWorkload(5).generate(200)
        streamed = list(
            chain.from_iterable(
                RoundRobinPathWorkload(5).iter_requests(200, chunk_size)
            )
        )
        assert streamed == expected

    def test_declared_universe_mismatch_is_refused(self):
        spec = WorkloadSpec.create("round_robin_path", depth=4, n_elements=3)
        with pytest.raises(WorkloadError, match="universe"):
            build_workload(spec)


class TestAdversarySpec:
    def test_build_constructs_the_right_classes(self):
        rotor = AdversarySpec.create("rotor-working-set", depth=4).build()
        assert isinstance(rotor, RotorPushWorkingSetAdversary)
        mtf = build_adversary(AdversarySpec.create("mtf-lower-bound", depth=3))
        assert isinstance(mtf, MoveToFrontLowerBoundAdversary)

    def test_unknown_kind_rejected_eagerly(self):
        with pytest.raises(WorkloadError, match="unknown adversary kind"):
            AdversarySpec.create("no-such-adversary", depth=4)
        with pytest.raises(WorkloadError, match="registered"):
            check_adversary_kind("also-missing")

    def test_json_round_trip(self):
        spec = AdversarySpec.create("rotor-working-set", depth=6)
        assert AdversarySpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict() == {
            "kind": "rotor-working-set",
            "params": {"depth": 6},
        }

    def test_build_gives_fresh_state(self):
        spec = AdversarySpec.create("rotor-working-set", depth=4)
        first_sequence, first_costs = spec.build().generate_with_costs(300)
        second_sequence, second_costs = spec.build().generate_with_costs(300)
        assert first_sequence == second_sequence
        assert [c.access_cost for c in first_costs] == [
            c.access_cost for c in second_costs
        ]

    def test_spec_is_hashable(self):
        spec = AdversarySpec.create("mtf-lower-bound", depth=3)
        assert hash(spec) == hash(AdversarySpec.create("mtf-lower-bound", depth=3))
