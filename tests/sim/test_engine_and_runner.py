"""Tests for the simulation engine, trial runner and algorithm comparison."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.sim.engine import simulate, simulate_algorithm_on_sequence, simulate_workload
from repro.sim.runner import TrialRunner, compare_algorithms
from repro.algorithms import make_algorithm
from repro.workloads import TemporalWorkload, UniformWorkload


class TestEngine:
    def test_simulate_by_name(self):
        result = simulate("rotor-push", [1, 2, 3, 1], n_nodes=15, placement_seed=1)
        assert result.algorithm == "rotor-push"
        assert result.n_requests == 4
        assert result.metadata["placement_seed"] == 1

    def test_simulate_prebuilt_algorithm(self):
        algorithm = make_algorithm("move-half", n_nodes=15, placement_seed=2)
        result = simulate_algorithm_on_sequence(algorithm, [3, 4, 3], metadata={"x": 1})
        assert result.metadata["x"] == 1

    def test_locality_stats_attached_when_requested(self):
        result = simulate(
            "static-oblivious",
            [1, 1, 2],
            n_nodes=15,
            placement_seed=1,
            with_locality_stats=True,
        )
        assert result.metadata["locality"]["length"] == 3.0

    def test_simulate_workload_uses_universe_size(self):
        workload = UniformWorkload(31, seed=3)
        result = simulate_workload("rotor-push", workload, 100, placement_seed=1)
        assert result.n_nodes == 31
        assert result.metadata["workload"]["workload"] == "uniform"

    def test_simulate_workload_negative_requests(self):
        with pytest.raises(ExperimentError):
            simulate_workload("rotor-push", UniformWorkload(15, seed=1), -1)


class TestTrialRunner:
    def test_invalid_configuration(self):
        with pytest.raises(ExperimentError):
            TrialRunner(n_nodes=15, n_requests=10, n_trials=0)
        with pytest.raises(ExperimentError):
            TrialRunner(n_nodes=15, n_requests=-1)

    def test_trial_sequences_are_seeded_independently(self):
        runner = TrialRunner(n_nodes=63, n_requests=50, n_trials=3, base_seed=5)
        sequences = runner.trial_sequences(lambda seed: UniformWorkload(63, seed=seed))
        assert len(sequences) == 3
        assert sequences[0] != sequences[1]

    def test_workload_universe_must_match(self):
        runner = TrialRunner(n_nodes=63, n_requests=10, n_trials=1)
        with pytest.raises(ExperimentError):
            runner.trial_sequences(lambda seed: UniformWorkload(31, seed=seed))

    def test_all_algorithms_see_the_same_sequences(self):
        runner = TrialRunner(n_nodes=31, n_requests=60, n_trials=2, base_seed=1)
        outcomes = runner.run(
            ["static-oblivious", "static-opt"],
            lambda seed: UniformWorkload(31, seed=seed),
        )
        for trial in range(2):
            first = outcomes["static-oblivious"][trial].result
            second = outcomes["static-opt"][trial].result
            assert first.n_requests == second.n_requests

    def test_aggregate_summarises_trials(self):
        runner = TrialRunner(n_nodes=31, n_requests=100, n_trials=3, base_seed=2)
        outcomes = runner.run(["rotor-push"], lambda seed: UniformWorkload(31, seed=seed))
        aggregated = TrialRunner.aggregate(outcomes)
        summary = aggregated["rotor-push"]
        assert summary.n_trials == 3
        assert summary.mean_total_cost > 0
        assert summary.total_cost["min"] <= summary.mean_total_cost <= summary.total_cost["max"]

    def test_reproducibility_of_full_runs(self):
        def run_once():
            runner = TrialRunner(n_nodes=31, n_requests=80, n_trials=2, base_seed=9)
            outcomes = runner.run(
                ["rotor-push", "random-push"],
                lambda seed: TemporalWorkload(31, 0.5, seed=seed),
            )
            return {
                name: [trial.result.total_cost for trial in trials]
                for name, trials in outcomes.items()
            }

        assert run_once() == run_once()


class TestCompareAlgorithms:
    def test_compare_returns_all_algorithms(self):
        aggregated = compare_algorithms(
            ["rotor-push", "static-oblivious"],
            lambda seed: TemporalWorkload(63, 0.8, seed=seed),
            n_nodes=63,
            n_requests=400,
            n_trials=2,
        )
        assert set(aggregated) == {"rotor-push", "static-oblivious"}

    def test_self_adjustment_beats_static_on_high_locality(self):
        aggregated = compare_algorithms(
            ["rotor-push", "static-oblivious"],
            lambda seed: TemporalWorkload(255, 0.9, seed=seed),
            n_nodes=255,
            n_requests=2_000,
            n_trials=2,
        )
        assert (
            aggregated["rotor-push"].mean_total_cost
            < aggregated["static-oblivious"].mean_total_cost
        )
