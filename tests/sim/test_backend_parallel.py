"""Backend knob across the runner/sweep/pool plumbing.

The ``backend`` choice travels inside every :class:`TrialPayload` and is
resolved in the worker, so a parallel run on the array backend must be
bit-identical to a serial run on the python backend — the backend is a pure
throughput knob at every fan-out width.
"""

from __future__ import annotations

import pytest

from repro.core import backend as backend_mod
from repro.sim.runner import TrialRunner, compare_algorithms
from repro.sim.sweep import ParameterSweep
from repro.workloads.composite import CombinedLocalityWorkload

ALGORITHMS = ["rotor-push", "random-push", "max-push", "static-oblivious"]
N_NODES = 63
N_REQUESTS = 400
N_TRIALS = 2


def factory(seed: int) -> CombinedLocalityWorkload:
    return CombinedLocalityWorkload(N_NODES, 1.4, 0.5, seed=seed)


def aggregates(backend, n_jobs, chunk_size=None):
    outcome = compare_algorithms(
        ALGORITHMS,
        factory,
        n_nodes=N_NODES,
        n_requests=N_REQUESTS,
        n_trials=N_TRIALS,
        n_jobs=n_jobs,
        chunk_size=chunk_size,
        backend=backend,
    )
    return {
        name: (
            outcome[name].access_cost,
            outcome[name].adjustment_cost,
            outcome[name].total_cost,
        )
        for name in ALGORITHMS
    }


class TestBackendAcrossJobs:
    def test_backends_and_job_counts_are_bit_identical(self):
        reference = aggregates("python", n_jobs=1)
        for backend in ("python", "array", None):
            for n_jobs in (1, 4):
                assert aggregates(backend, n_jobs) == reference, (backend, n_jobs)

    def test_chunk_size_and_backend_compose(self):
        reference = aggregates("python", n_jobs=1)
        assert aggregates("array", n_jobs=4, chunk_size=37) == reference

    def test_payloads_carry_the_backend(self):
        runner = TrialRunner(
            n_nodes=N_NODES,
            n_requests=N_REQUESTS,
            n_trials=N_TRIALS,
            backend="array",
        )
        sources = runner.trial_sources(factory)
        payloads = runner.build_payloads(ALGORITHMS, sources)
        assert all(payload.backend == "array" for payload in payloads)

    def test_runner_rejects_unknown_backend_eagerly(self):
        from repro.exceptions import BackendError

        with pytest.raises(BackendError):
            TrialRunner(
                n_nodes=N_NODES, n_requests=10, n_trials=1, backend="fortran"
            )

    def test_worker_passes_auto_through_unresolved(self, monkeypatch):
        """A None backend must reach make_algorithm unresolved so its
        per-algorithm auto-detection (python for max-push, array for
        rotor-push) still applies inside pool workers."""
        import repro.sim.runner as runner_mod
        from repro.sim.runner import SpecSource, TrialPayload, _execute_trial
        from repro.workloads.spec import WorkloadSpec

        seen = {}
        original = runner_mod.simulate_stream

        def spy(name, chunks, **kwargs):
            # payloads now carry AlgorithmSpec objects; key by registry name
            seen[getattr(name, "name", name)] = kwargs.get("backend")
            return original(name, chunks, **kwargs)

        monkeypatch.setattr(runner_mod, "simulate_stream", spy)
        spec = WorkloadSpec.create("uniform", seed=1, n_elements=N_NODES)
        for algorithm in ("max-push", "rotor-push"):
            _execute_trial(
                TrialPayload(
                    algorithm=algorithm,
                    source=SpecSource(spec, 50),
                    n_nodes=N_NODES,
                    placement_seed=1,
                    algorithm_seed=2,
                    keep_records=False,
                    trial=0,
                )
            )
        assert seen == {"max-push": None, "rotor-push": None}


class TestSweepBackend:
    def test_sweep_results_identical_across_backends(self):
        def sweep_table(backend, n_jobs):
            sweep = ParameterSweep(
                points=[{"p": 0.2}, {"p": 0.8}],
                workload_factory=lambda point, seed: CombinedLocalityWorkload(
                    N_NODES, 1.4, float(point["p"]), seed=seed
                ),
                algorithms=["rotor-push", "move-to-front"],
                n_nodes=N_NODES,
                n_requests=N_REQUESTS,
                n_trials=N_TRIALS,
                n_jobs=n_jobs,
                backend=backend,
            )
            return sweep.run().rows

        # sweeps flatten to the same payload list; only the backend differs
        reference = sweep_table("python", 1)
        assert sweep_table("array", 1) == reference
        assert sweep_table("array", 4) == reference


class TestSharedSourceMemo:
    def test_shared_chunks_memo_keys_on_transport(self):
        """List-chunk and array-chunk variants of one source must not collide."""
        if not backend_mod.HAS_NUMPY:
            pytest.skip("array transport needs NumPy")
        from repro.sim.runner import SpecSource, _chunks_of, _shared_chunks_cache

        spec = factory(3).to_spec()
        source = SpecSource(spec, 50, 16, shared=True)
        try:
            as_lists = _chunks_of(source, as_array=False)
            as_arrays = _chunks_of(source, as_array=True)
            assert all(isinstance(chunk, list) for chunk in as_lists)
            assert all(
                isinstance(chunk, backend_mod.np.ndarray) for chunk in as_arrays
            )
        finally:
            _shared_chunks_cache.clear()
