"""Spec-shipped streaming pipeline: determinism, laziness and pool reuse.

The acceptance contract of the rebuilt generation pipeline:

* payloads carry :class:`repro.sim.runner.SpecSource` (not sequences) for
  every spec-able workload, and building them never calls ``generate`` in the
  parent process;
* a parallel streaming run (``n_jobs=4``) is byte-identical to the serial
  materialised baseline at the same seeds, for both the runner and the sweep;
* ``map_ordered`` reuses one persistent process pool across calls.
"""

from __future__ import annotations

import pytest

from repro.sim import parallel
from repro.sim.engine import simulate, simulate_stream
from repro.sim.runner import (
    SequenceSource,
    SpecSource,
    TrialRunner,
    compare_algorithms,
)
from repro.sim.sweep import ParameterSweep
from repro.workloads import (
    CombinedLocalityWorkload,
    TemporalWorkload,
    UniformWorkload,
    WorkloadGenerator,
    WorkloadSpec,
    ZipfWorkload,
)
from repro.workloads.base import WorkloadGenerator as _Base

N_NODES = 63
N_REQUESTS = 400
ALGORITHMS = ["rotor-push", "random-push", "static-opt", "static-oblivious"]


def _factory(seed: int) -> CombinedLocalityWorkload:
    return CombinedLocalityWorkload(N_NODES, 1.4, 0.5, seed=seed)


class _SpeclessWorkload(WorkloadGenerator):
    """A workload without a spec: must fall back to a materialised sequence."""

    name = "specless"

    def generate(self, n_requests):
        self._check_length(n_requests)
        return [self._rng.randrange(self.n_elements) for _ in range(n_requests)]


class TestPayloadConstruction:
    def test_spec_able_workloads_ship_as_specs(self):
        runner = TrialRunner(n_nodes=N_NODES, n_requests=N_REQUESTS, n_trials=3)
        sources = runner.trial_sources(_factory)
        assert all(isinstance(source, SpecSource) for source in sources)
        assert [source.spec.seed for source in sources] == [0, 1, 2]

    def test_factory_may_return_specs_directly(self):
        runner = TrialRunner(n_nodes=N_NODES, n_requests=50, n_trials=2, base_seed=7)
        sources = runner.trial_sources(
            lambda seed: WorkloadSpec.create("uniform", seed=seed, n_elements=N_NODES)
        )
        assert [source.spec.seed for source in sources] == [7, 8]
        outcomes = runner.run(["rotor-push"], lambda seed: WorkloadSpec.create(
            "uniform", seed=seed, n_elements=N_NODES
        ))
        reference = runner.run(
            ["rotor-push"], lambda seed: UniformWorkload(N_NODES, seed=seed)
        )
        for left, right in zip(outcomes["rotor-push"], reference["rotor-push"]):
            assert left.result.to_dict() == right.result.to_dict()

    def test_specless_workload_falls_back_to_sequence(self):
        runner = TrialRunner(n_nodes=N_NODES, n_requests=50, n_trials=2)
        sources = runner.trial_sources(lambda seed: _SpeclessWorkload(N_NODES, seed))
        assert all(isinstance(source, SequenceSource) for source in sources)
        assert all(len(source.sequence) == 50 for source in sources)

    def test_trace_workloads_ship_truncated_sequences_not_trace_specs(self):
        # a fixed-sequence spec embeds the whole trace; shipping it would be
        # far heavier than the truncated sequence the runner actually needs
        from repro.workloads import SequenceWorkload

        trace = list(range(N_NODES)) * 100  # 6,300-element trace
        runner = TrialRunner(n_nodes=N_NODES, n_requests=50, n_trials=2)
        sources = runner.trial_sources(lambda seed: SequenceWorkload(N_NODES, trace))
        assert all(isinstance(source, SequenceSource) for source in sources)
        assert all(source.sequence == tuple(trace[:50]) for source in sources)

    def test_spec_universe_mismatch_rejected(self):
        from repro.exceptions import ExperimentError

        runner = TrialRunner(n_nodes=N_NODES, n_requests=10, n_trials=1)
        with pytest.raises(ExperimentError):
            runner.trial_sources(
                lambda seed: WorkloadSpec.create("uniform", seed=seed, n_elements=31)
            )

    def test_parent_never_generates_for_spec_workloads(self, monkeypatch):
        def forbidden(self, n_requests):
            raise AssertionError("generate() called in the parent process")

        # patch every concrete generator the sweep could touch
        monkeypatch.setattr(_Base, "generate", forbidden)
        monkeypatch.setattr(TemporalWorkload, "generate", forbidden)
        monkeypatch.setattr(UniformWorkload, "generate", forbidden)
        sweep = ParameterSweep(
            points=[{"p": 0.0}, {"p": 0.5}, {"p": 0.9}],
            workload_factory=lambda point, seed: TemporalWorkload(
                N_NODES, float(point["p"]), seed=seed
            ),
            algorithms=ALGORITHMS,
            n_nodes=N_NODES,
            n_requests=10**6,  # paper scale: materialising this would be obvious
            n_trials=3,
        )
        payloads, point_chunks = sweep.build_payloads()
        assert len(payloads) == 3 * 3 * len(ALGORITHMS)
        assert all(isinstance(p.source, SpecSource) for p in payloads)
        assert [count for _, count in point_chunks] == [len(ALGORITHMS) * 3] * 3


class TestStreamingDeterminism:
    def test_stream_equals_materialised_simulation(self):
        workload = ZipfWorkload(N_NODES, 1.8, seed=3)
        sequence = workload.generate(N_REQUESTS)
        materialised = simulate(
            "rotor-push", sequence, n_nodes=N_NODES, placement_seed=1, keep_records=False
        )
        streamed = simulate_stream(
            "rotor-push",
            ZipfWorkload(N_NODES, 1.8, seed=3).iter_requests(N_REQUESTS, 64),
            n_nodes=N_NODES,
            placement_seed=1,
            keep_records=False,
        )
        assert streamed.to_dict() == materialised.to_dict()

    def test_stream_supports_offline_preparation(self):
        # static-opt must see the whole sequence; run_stream materialises it
        workload = UniformWorkload(N_NODES, seed=2)
        sequence = workload.generate(N_REQUESTS)
        materialised = simulate(
            "static-opt", sequence, n_nodes=N_NODES, placement_seed=1, keep_records=False
        )
        streamed = simulate_stream(
            "static-opt",
            UniformWorkload(N_NODES, seed=2).iter_requests(N_REQUESTS, 64),
            n_nodes=N_NODES,
            placement_seed=1,
            keep_records=False,
        )
        assert streamed.to_dict() == materialised.to_dict()

    def test_runner_spec_path_equals_materialised_baseline(self):
        runner = TrialRunner(
            n_nodes=N_NODES, n_requests=N_REQUESTS, n_trials=3, base_seed=5, chunk_size=97
        )
        # serial materialised baseline: generate in the parent, ship sequences
        baseline = runner.run_on_sequences(
            ALGORITHMS, runner.trial_sequences(_factory), n_jobs=1
        )
        # spec-shipped streaming path, parallel
        streaming = TrialRunner(
            n_nodes=N_NODES,
            n_requests=N_REQUESTS,
            n_trials=3,
            base_seed=5,
            chunk_size=97,
            n_jobs=4,
        ).run(ALGORITHMS, _factory)
        assert baseline.keys() == streaming.keys()
        for name in baseline:
            for left, right in zip(baseline[name], streaming[name]):
                assert left.result.to_dict() == right.result.to_dict()

    @pytest.mark.parametrize("chunk_size", [None, 61])
    def test_sweep_serial_vs_parallel_byte_identical(self, chunk_size):
        def table(n_jobs):
            sweep = ParameterSweep(
                points=[{"p": 0.0}, {"a": 1.6, "p": 0.6}],
                workload_factory=lambda point, seed: (
                    CombinedLocalityWorkload(
                        N_NODES, float(point.get("a", 1.2)), float(point["p"]), seed=seed
                    )
                ),
                algorithms=ALGORITHMS,
                n_nodes=N_NODES,
                n_requests=N_REQUESTS,
                n_trials=2,
                base_seed=42,
                n_jobs=n_jobs,
                chunk_size=chunk_size,
            )
            return sweep.run(table_name="stream-check")

        assert table(1).to_json() == table(4).to_json()

    def test_compare_algorithms_chunk_size_invariant(self):
        def aggregate(chunk_size):
            return compare_algorithms(
                ["rotor-push", "move-half"],
                _factory,
                n_nodes=N_NODES,
                n_requests=N_REQUESTS,
                n_trials=2,
                chunk_size=chunk_size,
            )

        small = aggregate(17)
        large = aggregate(10_000)
        for name in small:
            assert small[name].total_cost == large[name].total_cost


class TestPersistentPool:
    def test_pool_is_reused_across_calls(self):
        parallel.shutdown_persistent_pool()
        parallel.map_ordered(abs, list(range(-8, 0)), n_jobs=2)
        first = parallel._pool
        assert first is not None
        parallel.map_ordered(abs, list(range(-8, 0)), n_jobs=2)
        assert parallel._pool is first

    def test_pool_is_replaced_when_size_changes(self):
        parallel.shutdown_persistent_pool()
        parallel.map_ordered(abs, list(range(-8, 0)), n_jobs=2)
        first = parallel._pool
        parallel.map_ordered(abs, list(range(-8, 0)), n_jobs=3)
        assert parallel._pool is not first
        parallel.shutdown_persistent_pool()
        assert parallel._pool is None

    def test_serial_calls_do_not_create_a_pool(self):
        parallel.shutdown_persistent_pool()
        parallel.map_ordered(abs, [-1, -2], n_jobs=1)
        assert parallel._pool is None

    def test_pool_is_rebuilt_after_new_workload_registration(self):
        # forked workers snapshot the registry at pool creation; registering
        # a new kind must force a rebuild so workers can build it
        from repro.workloads import register_workload

        parallel.shutdown_persistent_pool()
        parallel.map_ordered(abs, list(range(-8, 0)), n_jobs=2)
        first = parallel._pool
        register_workload("test-pool-rebuild-kind")(
            lambda params, seed: _SpeclessWorkload(int(params["n_elements"]), seed)
        )
        parallel.map_ordered(abs, list(range(-8, 0)), n_jobs=2)
        assert parallel._pool is not first
        parallel.shutdown_persistent_pool()


class TestSharedStreamMemo:
    def test_shared_sources_generate_once_per_trial(self, monkeypatch):
        import repro.sim.runner as runner_module

        builds = []
        real_build = runner_module.build_workload
        monkeypatch.setattr(
            runner_module,
            "build_workload",
            lambda spec: builds.append(spec) or real_build(spec),
        )
        runner_module._shared_chunks_cache.clear()
        runner = TrialRunner(n_nodes=N_NODES, n_requests=100, n_trials=2)
        runner.run(["rotor-push", "move-half", "static-oblivious"], _factory)
        # one build per trial, not one per (trial, algorithm)
        assert len(builds) == 2
        runner_module._shared_chunks_cache.clear()

    def test_single_algorithm_sources_stay_unshared(self):
        runner = TrialRunner(n_nodes=N_NODES, n_requests=100, n_trials=2)
        payloads = runner.build_payloads(["rotor-push"], runner.trial_sources(_factory))
        assert all(not p.source.shared for p in payloads)
        both = runner.build_payloads(
            ["rotor-push", "move-half"], runner.trial_sources(_factory)
        )
        assert all(p.source.shared for p in both)

    def test_shared_and_unshared_results_identical(self):
        runner = TrialRunner(n_nodes=N_NODES, n_requests=200, n_trials=2, base_seed=3)
        shared = runner.run(["rotor-push", "move-half"], _factory)
        lone_rotor = runner.run(["rotor-push"], _factory)
        for left, right in zip(shared["rotor-push"], lone_rotor["rotor-push"]):
            assert left.result.to_dict() == right.result.to_dict()
