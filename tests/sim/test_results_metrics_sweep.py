"""Tests for result tables, per-request metrics and parameter sweeps."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ExperimentError
from repro.sim.engine import simulate
from repro.sim.metrics import (
    access_cost_series,
    adjustment_cost_series,
    histogram_of_differences,
    moving_average,
    per_request_cost_difference,
    total_cost_series,
)
from repro.sim.results import ResultTable, summarise_values
from repro.sim.sweep import ParameterSweep
from repro.workloads import TemporalWorkload, UniformWorkload


class TestResultTable:
    def make_table(self):
        table = ResultTable(name="demo", columns=["x", "value"])
        table.add_row(x=1, value=2.5)
        table.add_row(x=2, value=3.5)
        return table

    def test_add_row_requires_all_columns(self):
        table = ResultTable(name="demo", columns=["x", "value"])
        with pytest.raises(ExperimentError):
            table.add_row(x=1)

    def test_column_extraction(self):
        assert self.make_table().column("value") == [2.5, 3.5]

    def test_unknown_column(self):
        with pytest.raises(ExperimentError):
            self.make_table().column("missing")

    def test_filter(self):
        filtered = self.make_table().filter(x=2)
        assert len(filtered) == 1
        assert filtered.rows[0]["value"] == 3.5

    def test_csv_roundtrip(self, tmp_path):
        path = self.make_table().to_csv(str(tmp_path / "out.csv"))
        content = path.read_text().splitlines()
        assert content[0] == "x,value"
        assert len(content) == 3

    def test_json_export(self, tmp_path):
        payload = self.make_table().to_json(str(tmp_path / "out.json"))
        decoded = json.loads(payload)
        assert decoded["name"] == "demo"
        assert len(decoded["rows"]) == 2

    def test_format_text_contains_all_rows(self):
        text = self.make_table().format_text()
        assert "demo" in text and "2.500" in text and "3.500" in text

    def test_format_text_row_limit(self):
        text = self.make_table().format_text(max_rows=1)
        assert "more rows" in text

    def test_extend(self):
        table = ResultTable(name="demo", columns=["x", "value"])
        table.extend([{"x": 1, "value": 1.0}, {"x": 2, "value": 2.0}])
        assert len(table) == 2

    def test_summarise_values(self):
        summary = summarise_values([1.0, 2.0, 3.0])
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["count"] == 3.0
        assert summarise_values([])["count"] == 0.0


class TestMetrics:
    def run_pair(self):
        sequence = UniformWorkload(31, seed=1).generate(200)
        first = simulate("rotor-push", sequence, n_nodes=31, placement_seed=2, keep_records=True)
        second = simulate(
            "random-push", sequence, n_nodes=31, placement_seed=2, seed=3, keep_records=True
        )
        return first, second

    def test_series_lengths(self):
        first, _ = self.run_pair()
        assert len(access_cost_series(first)) == 200
        assert len(adjustment_cost_series(first)) == 200
        assert len(total_cost_series(first)) == 200

    def test_series_require_records(self):
        sequence = UniformWorkload(31, seed=1).generate(10)
        result = simulate("rotor-push", sequence, n_nodes=31, placement_seed=2, keep_records=False)
        with pytest.raises(ExperimentError):
            access_cost_series(result)

    def test_cost_difference(self):
        first, second = self.run_pair()
        differences = per_request_cost_difference(first, second, which="access")
        assert len(differences) == 200
        assert all(isinstance(d, int) for d in differences)

    def test_cost_difference_invalid_metric(self):
        first, second = self.run_pair()
        with pytest.raises(ExperimentError):
            per_request_cost_difference(first, second, which="bogus")

    def test_histogram(self):
        histogram = histogram_of_differences([0, 0, 1, -1, 0])
        assert histogram.total == 5
        assert histogram.probability(0) == pytest.approx(0.6)
        assert histogram.mean() == pytest.approx(0.0)
        assert histogram.support() == [-1, 0, 1]
        assert len(histogram.as_rows()) == 3

    def test_moving_average(self):
        assert moving_average([1, 2, 3, 4], window=2) == [1.0, 1.5, 2.5, 3.5]

    def test_moving_average_invalid_window(self):
        with pytest.raises(ExperimentError):
            moving_average([1.0], window=0)


class TestParameterSweep:
    def test_sweep_produces_one_row_per_point_and_algorithm(self):
        sweep = ParameterSweep(
            points=[{"p": 0.0}, {"p": 0.8}],
            workload_factory=lambda point, seed: TemporalWorkload(63, float(point["p"]), seed=seed),
            algorithms=["rotor-push", "static-oblivious"],
            n_nodes=63,
            n_requests=300,
            n_trials=2,
        )
        table = sweep.run("unit_sweep")
        assert len(table) == 4
        assert set(table.column("algorithm")) == {"rotor-push", "static-oblivious"}

    def test_sweep_point_tree_size_override(self):
        sweep = ParameterSweep(
            points=[{"n_nodes": 31}, {"n_nodes": 63}],
            workload_factory=lambda point, seed: UniformWorkload(int(point["n_nodes"]), seed=seed),
            algorithms=["static-oblivious"],
            n_requests=100,
            n_trials=1,
        )
        table = sweep.run()
        sizes = table.column("n_nodes")
        assert sizes == [31, 63]

    def test_sweep_validation(self):
        with pytest.raises(ExperimentError):
            ParameterSweep(points=[], workload_factory=lambda p, s: None, algorithms=["x"])
        with pytest.raises(ExperimentError):
            ParameterSweep(points=[{"p": 1}], workload_factory=lambda p, s: None, algorithms=[])

    def test_sweep_without_tree_size_fails(self):
        sweep = ParameterSweep(
            points=[{"p": 0.5}],
            workload_factory=lambda point, seed: UniformWorkload(63, seed=seed),
            algorithms=["static-oblivious"],
            n_requests=10,
            n_trials=1,
        )
        with pytest.raises(ExperimentError):
            sweep.run()

    def test_locality_improves_rotor_push_in_sweep(self):
        sweep = ParameterSweep(
            points=[{"p": 0.0}, {"p": 0.9}],
            workload_factory=lambda point, seed: TemporalWorkload(127, float(point["p"]), seed=seed),
            algorithms=["rotor-push"],
            n_nodes=127,
            n_requests=1_500,
            n_trials=2,
        )
        table = sweep.run()
        low = table.filter(p=0.0).rows[0]["mean_total_cost"]
        high = table.filter(p=0.9).rows[0]["mean_total_cost"]
        assert high < low
