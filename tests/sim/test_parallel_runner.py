"""Parallel trial execution: n_jobs > 1 must be bit-identical to serial runs.

The acceptance contract of the parallel subsystem is determinism: per-trial
seeds are pure functions of the trial index and results are reassembled in
payload order, so fanning work out over a process pool must change wall-clock
time only, never a single output byte.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.sim.parallel import map_ordered, resolve_n_jobs
from repro.sim.runner import TrialRunner, compare_algorithms
from repro.sim.sweep import ParameterSweep
from repro.workloads.composite import CombinedLocalityWorkload
from repro.workloads.temporal import TemporalWorkload

N_NODES = 63
N_REQUESTS = 400
ALGORITHMS = ["rotor-push", "random-push", "static-oblivious"]


def _workload_factory(seed: int) -> CombinedLocalityWorkload:
    return CombinedLocalityWorkload(N_NODES, 1.4, 0.5, seed=seed)


class TestResolveNJobs:
    def test_default_is_serial(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(1) == 1

    def test_positive_passthrough(self):
        assert resolve_n_jobs(3) == 3

    def test_negative_means_all_cpus(self):
        assert resolve_n_jobs(-1) >= 1

    def test_zero_rejected(self):
        with pytest.raises(ExperimentError):
            resolve_n_jobs(0)


class TestMapOrdered:
    def test_serial_preserves_order(self):
        assert map_ordered(abs, [-3, 1, -2], n_jobs=1) == [3, 1, 2]

    def test_parallel_preserves_order(self):
        assert map_ordered(abs, list(range(-8, 0)), n_jobs=2) == list(range(8, 0, -1))


class TestParallelDeterminism:
    def test_trial_runner_outcomes_identical(self):
        def outcomes(n_jobs):
            runner = TrialRunner(
                n_nodes=N_NODES,
                n_requests=N_REQUESTS,
                n_trials=3,
                base_seed=5,
                n_jobs=n_jobs,
            )
            return runner.run(ALGORITHMS, _workload_factory)

        serial = outcomes(1)
        parallel = outcomes(2)
        assert serial.keys() == parallel.keys()
        for name in serial:
            assert [t.trial for t in serial[name]] == [t.trial for t in parallel[name]]
            for left, right in zip(serial[name], parallel[name]):
                assert left.result.to_dict() == right.result.to_dict()

    def test_compare_algorithms_identical(self):
        def aggregate(n_jobs):
            return compare_algorithms(
                ALGORITHMS,
                _workload_factory,
                n_nodes=N_NODES,
                n_requests=N_REQUESTS,
                n_trials=2,
                n_jobs=n_jobs,
            )

        serial = aggregate(1)
        parallel = aggregate(2)
        for name in serial:
            assert serial[name].access_cost == parallel[name].access_cost
            assert serial[name].adjustment_cost == parallel[name].adjustment_cost
            assert serial[name].total_cost == parallel[name].total_cost

    def test_parameter_sweep_table_byte_identical(self):
        def table(n_jobs):
            sweep = ParameterSweep(
                points=[{"p": 0.0}, {"p": 0.6}],
                workload_factory=lambda point, seed: TemporalWorkload(
                    N_NODES, float(point["p"]), seed=seed
                ),
                algorithms=ALGORITHMS,
                n_nodes=N_NODES,
                n_requests=N_REQUESTS,
                n_trials=2,
                base_seed=42,
                n_jobs=n_jobs,
            )
            return sweep.run(table_name="parallel-check")

        assert table(1).to_json() == table(2).to_json()
