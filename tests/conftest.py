"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import random

import pytest

from repro.core import CompleteBinaryTree, RotorState, TreeNetwork


@pytest.fixture
def tree_depth3() -> CompleteBinaryTree:
    """The 15-node tree used by Figure 1 of the paper."""
    return CompleteBinaryTree.from_depth(3)


@pytest.fixture
def tree_depth5() -> CompleteBinaryTree:
    """A 63-node tree, large enough for non-trivial algorithm behaviour."""
    return CompleteBinaryTree.from_depth(5)


@pytest.fixture
def network_depth3(tree_depth3) -> TreeNetwork:
    """Identity-placed network on the 15-node tree, with rotor pointers."""
    return TreeNetwork(tree_depth3, with_rotor=True)


@pytest.fixture
def network_depth5_random(tree_depth5) -> TreeNetwork:
    """Randomly-placed network on the 63-node tree, with rotor pointers."""
    return TreeNetwork.with_random_placement(tree_depth5, seed=123, with_rotor=True)


@pytest.fixture
def rotor_depth3(tree_depth3) -> RotorState:
    """All-left rotor state on the 15-node tree (the paper's initial state)."""
    return RotorState(tree_depth3)


@pytest.fixture
def rng() -> random.Random:
    """A seeded random generator for tests that need auxiliary randomness."""
    return random.Random(20220422)


@pytest.fixture
def short_uniform_sequence(rng) -> list:
    """A short uniform request sequence over 63 elements."""
    return [rng.randrange(63) for _ in range(500)]
