"""Graceful shutdown of the real daemons, as real subprocesses.

Both long-lived processes — ``repro serve`` and ``repro worker`` — must
treat SIGTERM/SIGINT as *drain*, not kill: finish what was accepted, flush
state, report, exit 0.  These tests spawn the actual CLI entrypoints and
signal them, because signal handling cannot be faithfully tested in-process.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.plans import RunConfig, TrialPlan
from repro.serve.client import ServeClient, drive_load
from repro.serve.ingest import read_ingest_log
from repro.serve.replay import build_replay_plan
from repro.workloads.spec import WorkloadSpec

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def spawn(arguments):
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *arguments],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def wait_for_line(process, needle, limit=50):
    for _ in range(limit):
        line = process.stdout.readline()
        if needle in line:
            return line.strip()
    raise AssertionError(f"daemon never printed {needle!r}")


class TestServeDaemon:
    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_signal_drains_flushes_and_replays(self, tmp_path, signum):
        log_dir = tmp_path / "ingest"
        process = spawn(
            [
                "serve",
                "--listen",
                "tcp://127.0.0.1:0",
                "--nodes",
                "63",
                "--algorithm",
                "rotor-push",
                "--log-dir",
                str(log_dir),
            ]
        )
        try:
            banner = wait_for_line(process, "serve listening on")
            address = banner.split()[-1]
            drive_load(address, ["alpha", "beta"], n_requests=40, batch_size=5)
            with ServeClient(address) as client:
                live_table = client.cost_table()
            process.send_signal(signum)
            out, err = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, err
        assert "serve drained (80 requests, 2 sources" in out
        # the final report is the same cost table the client saw live
        assert live_table.format_text() in out
        # the flushed log replays to the live totals, byte for byte
        log = read_ingest_log(log_dir)
        assert not log.report.truncated
        replayed = repro.run(build_replay_plan(log))
        assert replayed.rows == live_table.rows
        assert replayed.format_text() == live_table.format_text()

    def test_sigterm_with_no_traffic_still_exits_cleanly(self, tmp_path):
        process = spawn(["serve", "--listen", "tcp://127.0.0.1:0"])
        try:
            wait_for_line(process, "serve listening on")
            process.send_signal(signal.SIGTERM)
            out, err = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, err
        assert "serve drained (0 requests, 0 sources, 0 batches)" in out


class TestWorkerDaemon:
    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_idle_worker_drains_on_signal(self, signum):
        process = spawn(["worker", "--listen", "tcp://127.0.0.1:0"])
        try:
            wait_for_line(process, "worker listening on")
            process.send_signal(signum)
            out, err = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, err
        assert "worker draining on" in out
        assert "worker drained (0 leases completed)" in out

    def test_worker_finishes_served_leases_before_draining(self):
        """A worker that has executed plan payloads drains with a non-zero
        completed count — the signal never abandons accepted work."""
        process = spawn(["worker", "--listen", "tcp://127.0.0.1:0"])
        try:
            banner = wait_for_line(process, "worker listening on")
            address = banner.split()[-1]
            plan = TrialPlan(
                name="drain-check",
                n_nodes=15,
                workload=WorkloadSpec.create("uniform", n_elements=15),
                algorithms=("rotor-push",),
                config=RunConfig(n_requests=30, n_trials=2, base_seed=1),
            )
            serial = repro.run(plan)
            remote = repro.run(plan, executor=address)
            assert remote.rows == serial.rows
            process.send_signal(signal.SIGTERM)
            out, err = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, err
        assert "worker drained (" in out
        completed = int(out.split("worker drained (")[1].split()[0])
        assert completed >= 1
