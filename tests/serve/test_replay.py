"""Replay determinism: live session -> ingest log -> ``repro.run`` identity.

The PR's acceptance pin.  A live server is driven by genuinely concurrent
clients, then the recorded ingest log is rebuilt into a plan and replayed —
and the replayed per-source cost table must equal the live one *exactly*
(integer totals, row for row, and byte-for-byte as rendered text), across
``n_jobs`` 1 and 4 and across backends.  Damage handling rides along: a torn
tail replays the surviving prefix with a report, mid-log corruption refuses
unless salvage is requested.
"""

from __future__ import annotations

import pytest

import repro
from repro.core import backend as backend_mod
from repro.plans.model import plan_with_overrides
from repro.serve.client import drive_load
from repro.serve.engine import ServeEngine
from repro.serve.ingest import IngestError, IngestLogReader, IngestReport, read_ingest_log
from repro.serve.replay import build_replay_plan, replay_sequences
from repro.serve.server import ServeServer


def fake_log(records, header=None):
    return IngestLogReader(
        path="<memory>",
        header=dict(header or {}),
        records=list(records),
        report=IngestReport(segments=1, records=len(records)),
    )


class TestReplaySequences:
    def test_concatenates_batches_per_source_in_log_order(self):
        log = fake_log(
            [
                {"type": "bind", "source": "alpha", "source_id": 0},
                {"type": "request", "source_id": 0, "destinations": [1, 2]},
                {"type": "bind", "source": "beta", "source_id": 1},
                {"type": "request", "source_id": 1, "destinations": [9]},
                {"type": "request", "source_id": 0, "destinations": [3]},
            ]
        )
        assert replay_sequences(log) == [
            ("alpha", 0, [1, 2, 3]),
            ("beta", 1, [9]),
        ]

    def test_out_of_order_bind_rejected(self):
        log = fake_log([{"type": "bind", "source": "alpha", "source_id": 1}])
        with pytest.raises(IngestError, match="out of order"):
            replay_sequences(log)

    def test_request_for_unbound_source_rejected(self):
        log = fake_log([{"type": "request", "source_id": 0, "destinations": [1]}])
        with pytest.raises(IngestError, match="unbound"):
            replay_sequences(log)

    def test_unknown_record_type_rejected(self):
        log = fake_log([{"type": "mystery"}])
        with pytest.raises(IngestError, match="unknown record type"):
            replay_sequences(log)


class TestBuildReplayPlan:
    def test_incomplete_header_raises(self):
        log = fake_log([], header={"n_nodes": 63})
        with pytest.raises(IngestError, match="incomplete header"):
            build_replay_plan(log)

    def test_silent_sources_get_no_stage(self):
        log = fake_log(
            [
                {"type": "bind", "source": "silent", "source_id": 0},
                {"type": "bind", "source": "busy", "source_id": 1},
                {"type": "request", "source_id": 1, "destinations": [4, 5]},
            ],
            header={
                "n_nodes": 63,
                "algorithm": {"name": "rotor-push"},
                "base_seed": 0,
                "backend": None,
            },
        )
        plan = build_replay_plan(log)
        assert [key for key, _stage in plan.stages] == ["busy"]


@pytest.fixture(scope="module")
def live_session(tmp_path_factory):
    """One live run shared by every determinism test: server + concurrent
    clients + the recorded log + the live cost table."""
    log_dir = tmp_path_factory.mktemp("serve") / "ingest"
    server = ServeServer(
        n_nodes=63,
        algorithm="rotor-push",
        base_seed=11,
        log_dir=str(log_dir),
        queue_limit=8,
    ).start()
    try:
        totals = drive_load(
            server.address,
            ["alpha", "beta", "gamma"],
            n_requests=90,
            batch_size=7,
            seed=3,
        )
        live_table = server.engine.cost_table()
    finally:
        server.stop()
    return {
        "log_dir": log_dir,
        "live_table": live_table,
        "client_totals": totals,
    }


class TestReplayIdentity:
    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_replay_matches_live_exactly(self, live_session, n_jobs):
        plan = build_replay_plan(read_ingest_log(live_session["log_dir"]))
        replayed = repro.run(plan_with_overrides(plan, n_jobs=n_jobs))
        live = live_session["live_table"]
        assert replayed.rows == live.rows
        assert replayed.format_text() == live.format_text()

    def test_backends_agree_with_live(self, live_session):
        plan = build_replay_plan(read_ingest_log(live_session["log_dir"]))
        live = live_session["live_table"]
        python_rows = repro.run(plan_with_overrides(plan, backend="python")).rows
        assert python_rows == live.rows
        if backend_mod.HAS_NUMPY:
            array_rows = repro.run(plan_with_overrides(plan, backend="array")).rows
            assert array_rows == live.rows

    def test_client_reply_totals_equal_replayed_rows(self, live_session):
        plan = build_replay_plan(read_ingest_log(live_session["log_dir"]))
        replayed = repro.run(plan)
        rows = {row["source"]: row for row in replayed.rows}
        for source, accumulated in live_session["client_totals"].items():
            assert rows[source]["n_requests"] == accumulated["n"]
            assert rows[source]["total_access_cost"] == accumulated["access_cost"]
            assert (
                rows[source]["total_adjustment_cost"]
                == accumulated["adjustment_cost"]
            )

    def test_replay_from_engine_log_without_a_server(self, tmp_path):
        """The identity holds at the engine layer too, with interleaved
        multi-source traffic written through a deliberately tiny segment
        size so the replay crosses many rotated segments."""
        from repro.serve.ingest import IngestWriter

        engine = ServeEngine(
            63,
            "rotor-push",
            base_seed=5,
            log=IngestWriter(
                tmp_path / "log",
                {
                    "n_nodes": 63,
                    "algorithm": {"name": "rotor-push"},
                    "backend": None,
                    "base_seed": 5,
                },
                segment_bytes=256,
            ),
        )
        import random

        rng = random.Random(42)
        for source in ("a", "b"):
            engine.bind(source)
        for _ in range(80):
            source = rng.choice(("a", "b"))
            engine.submit(source, [rng.randrange(63) for _ in range(3)])
        engine.log.close()
        live = engine.cost_table()
        log = read_ingest_log(tmp_path / "log")
        assert log.report.segments > 3  # rotation actually happened
        replayed = repro.run(build_replay_plan(log))
        assert replayed.rows == live.rows


class TestDamagedLogReplay:
    def make_log(self, tmp_path):
        engine = ServeEngine(63, "rotor-push")
        from repro.serve.ingest import IngestWriter

        engine.log = IngestWriter(
            tmp_path / "log",
            {
                "n_nodes": 63,
                "algorithm": {"name": "rotor-push"},
                "backend": None,
                "base_seed": 0,
            },
        )
        engine.bind("alpha")
        for start in range(0, 40, 4):
            engine.submit("alpha", [d % 63 for d in range(start, start + 4)])
        engine.log.close()
        return engine.cost_table()

    def test_torn_tail_replays_the_acknowledged_prefix(self, tmp_path):
        self.make_log(tmp_path)
        segment = sorted((tmp_path / "log").glob("segment-*.jsonl"))[-1]
        body = segment.read_bytes()
        segment.write_bytes(body[:-11])  # crash-torn final record
        log = read_ingest_log(tmp_path / "log")
        assert log.report.truncated
        # the last accepted batch is gone; everything before it replays
        replayed = repro.run(build_replay_plan(log))
        assert replayed.rows[-1]["n_requests"] == 36

    def test_mid_log_corruption_is_fatal_unless_salvaged(self, tmp_path):
        self.make_log(tmp_path)
        # split the single segment into two so damage is non-final
        log_root = tmp_path / "log"
        segment = log_root / "segment-000000.jsonl"
        lines = segment.read_bytes().splitlines(keepends=True)
        # line 6 (the fifth request) is destroyed; later requests moved to a
        # second segment, so the damage sits before the final segment
        segment.write_bytes(b"".join(lines[:5]) + b"garbage\n")
        (log_root / "segment-000001.jsonl").write_bytes(b"".join(lines[6:]))
        with pytest.raises(IngestError, match="allow_mid_loss"):
            read_ingest_log(log_root)
        salvaged = read_ingest_log(log_root, allow_mid_loss=True)
        assert salvaged.report.dropped == 1
        replayed = repro.run(build_replay_plan(salvaged))
        # bind + 9 of the 10 accepted batches survive (4 requests each)
        assert replayed.rows[-1]["n_requests"] == 36
