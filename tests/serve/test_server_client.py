"""The live serve daemon, in process: sessions, backpressure, stats, drain.

These tests embed :class:`~repro.serve.server.ServeServer` on a background
thread (the same ergonomics as ``WorkerServer`` in the dist tests) and talk
to it through real TCP connections — both via the bundled
:class:`~repro.serve.client.ServeClient` and via raw frames where the test
needs to control exactly what hits the wire (backpressure, handshake
violations).
"""

from __future__ import annotations

import socket

import pytest

from repro.dist.framing import recv_frame, send_frame
from repro.dist.protocol import PROTOCOL_VERSION
from repro.serve.client import ServeClient, drive_load
from repro.serve.engine import ServeError
from repro.serve.server import ServeServer

QUEUE_LIMIT = 4


@pytest.fixture()
def server():
    instance = ServeServer(
        n_nodes=63, algorithm="rotor-push", queue_limit=QUEUE_LIMIT
    ).start()
    yield instance
    instance.stop()


def raw_connection(server):
    sock = socket.create_connection((server.host, server.port), timeout=10.0)
    send_frame(sock, {"type": "hello", "protocol": PROTOCOL_VERSION})
    welcome = recv_frame(sock)
    assert welcome["type"] == "welcome"
    return sock


class TestHandshake:
    def test_welcome_reports_configuration(self, server):
        with ServeClient(server.address) as client:
            assert client.n_nodes == 63
            assert client.server["algorithm"]["name"] == "rotor-push"
            assert client.server["queue_limit"] == QUEUE_LIMIT

    def test_protocol_mismatch_rejected(self, server):
        sock = socket.create_connection((server.host, server.port), timeout=10.0)
        try:
            send_frame(sock, {"type": "hello", "protocol": PROTOCOL_VERSION + 999})
            assert recv_frame(sock)["type"] == "error"
        finally:
            sock.close()


class TestSessions:
    def test_request_reply_carries_costs_and_depth(self, server):
        with ServeClient(server.address) as client:
            session = client.open("alpha")
            assert session["source_id"] == 0
            reply = client.request_batch([1, 2, 3])
            assert reply["type"] == "reply"
            assert reply["source"] == "alpha"
            assert reply["n"] == 3
            assert reply["access_cost"] >= 0
            assert reply["adjustment_cost"] >= 0
            single = client.request(7)
            assert single["n"] == 1

    def test_request_without_session_rejected(self, server):
        with ServeClient(server.address) as client:
            with pytest.raises(ServeError, match="open_session"):
                client.request(1)

    def test_double_bind_of_an_active_source_rejected(self, server):
        with ServeClient(server.address) as first:
            first.open("alpha")
            with ServeClient(server.address) as second:
                with pytest.raises(ServeError, match="already bound"):
                    second.open("alpha")

    def test_one_connection_serves_one_source(self, server):
        with ServeClient(server.address) as client:
            client.open("alpha")
            with pytest.raises(ServeError, match="already serves"):
                client.open("beta")

    def test_reconnect_resumes_the_same_source(self, server):
        with ServeClient(server.address) as client:
            assert client.open("alpha")["source_id"] == 0
            client.request_batch([1, 2])
        # same source id, same tree, totals continue accumulating
        with ServeClient(server.address) as client:
            assert client.open("alpha")["source_id"] == 0
            client.request_batch([3])
            client.drain()
            stats = client.stats()
        row = stats["engine"]["sources"][0]
        assert row["n_requests"] == 3

    def test_bad_destinations_rejected_per_batch(self, server):
        with ServeClient(server.address) as client:
            client.open("alpha")
            for batch in ([], [63], [-1], [True], ["x"], "not-a-list"):
                with pytest.raises(ServeError):
                    client.request_batch(batch)
            # the session is still usable afterwards
            assert client.request_batch([0])["n"] == 1


class TestBackpressure:
    def test_full_queue_answers_busy_immediately(self, server):
        server.pause_engine()
        sock = raw_connection(server)
        try:
            send_frame(sock, {"type": "open_session", "source": "alpha"})
            assert recv_frame(sock)["type"] == "session"
            # with the engine paused the queue fills deterministically:
            # queue_limit batches are accepted silently, the next is busy
            for reply_id in range(1, QUEUE_LIMIT + 2):
                send_frame(
                    sock,
                    {"type": "request_batch", "id": reply_id, "destinations": [1]},
                )
            busy = recv_frame(sock)
            assert busy["type"] == "busy"
            assert busy["id"] == QUEUE_LIMIT + 1
            assert busy["queue_depth"] == QUEUE_LIMIT
            assert busy["queue_limit"] == QUEUE_LIMIT
            # resume: every accepted batch is served and replied to, in order
            server.resume_engine()
            replies = [recv_frame(sock) for _ in range(QUEUE_LIMIT)]
            assert [r["id"] for r in replies] == list(range(1, QUEUE_LIMIT + 1))
            assert all(r["type"] == "reply" for r in replies)
        finally:
            sock.close()

    def test_client_observes_busy_then_succeeds(self, server):
        with ServeClient(server.address) as client:
            client.open("alpha")
            server.pause_engine()
            # fill the queue over the client's own socket without consuming
            # replies (none come while paused), then observe busy directly
            for fill_id in range(100, 100 + QUEUE_LIMIT):
                send_frame(
                    client._sock,
                    {"type": "request_batch", "id": fill_id, "destinations": [1]},
                )
            busy = client.request_batch([2], block=False)
            assert busy["type"] == "busy"
            assert client.busy_count == 1
            server.resume_engine()
            replies = [recv_frame(client._sock) for _ in range(QUEUE_LIMIT)]
            assert [r["id"] for r in replies] == list(range(100, 100 + QUEUE_LIMIT))
            # with room again, the blocking path goes straight through
            assert client.request_batch([2])["type"] == "reply"

    def test_busy_is_not_logged_or_served(self, tmp_path):
        from repro.serve.ingest import read_ingest_log

        instance = ServeServer(
            n_nodes=63,
            algorithm="rotor-push",
            queue_limit=2,
            log_dir=str(tmp_path / "log"),
        ).start()
        try:
            instance.pause_engine()
            sock = raw_connection(instance)
            try:
                send_frame(sock, {"type": "open_session", "source": "alpha"})
                assert recv_frame(sock)["type"] == "session"
                for reply_id in range(1, 5):  # 2 accepted, 2 busy
                    send_frame(
                        sock,
                        {
                            "type": "request_batch",
                            "id": reply_id,
                            "destinations": [reply_id],
                        },
                    )
                assert recv_frame(sock)["type"] == "busy"
                assert recv_frame(sock)["type"] == "busy"
                instance.resume_engine()
                assert recv_frame(sock)["type"] == "reply"
                assert recv_frame(sock)["type"] == "reply"
            finally:
                sock.close()
        finally:
            instance.stop()
        log = read_ingest_log(tmp_path / "log")
        # only the two accepted batches were logged — busy is a pure bounce
        assert [r["destinations"] for r in log.request_records()] == [[1], [2]]


class TestStatsAndDrain:
    def test_stats_frame_shape(self, server):
        with ServeClient(server.address) as client:
            client.open("alpha")
            client.request_batch([1, 2, 3, 4])
            client.drain()
            stats = client.stats()
        assert stats["served_batches"] >= 1
        assert stats["queue_limit"] == QUEUE_LIMIT
        assert stats["req_per_s"] > 0
        assert stats["queues"] == {"alpha": 0}
        assert stats["stopping"] is False
        assert stats["engine"]["n_requests"] == 4
        table = stats["cost_table"]
        assert table["name"] == "serve"
        assert table["rows"][-1]["source"] == "total"

    def test_drain_reports_global_request_count(self, server):
        with ServeClient(server.address) as client:
            client.open("alpha")
            client.request_batch([1])
            drained = client.drain()
            assert drained["type"] == "drained"
            assert drained["source"] == "alpha"
            assert drained["n_requests"] == 1

    def test_live_cost_table_matches_engine(self, server):
        with ServeClient(server.address) as client:
            client.open("alpha")
            client.request_batch([1, 2, 3])
            client.drain()
            table = client.cost_table()
        engine_table = server.engine.cost_table()
        assert table.rows == engine_table.rows
        assert table.format_text() == engine_table.format_text()


class TestConcurrentLoad:
    def test_drive_load_totals_agree_with_server_stats(self, server):
        totals = drive_load(
            server.address, ["alpha", "beta", "gamma"], n_requests=60, batch_size=7
        )
        with ServeClient(server.address) as client:
            stats = client.stats()
        rows = {row["source"]: row for row in stats["engine"]["sources"]}
        assert set(rows) == {"alpha", "beta", "gamma"}
        for source, accumulated in totals.items():
            assert rows[source]["n_requests"] == accumulated["n"] == 60
            assert rows[source]["total_access_cost"] == accumulated["access_cost"]
            assert (
                rows[source]["total_adjustment_cost"]
                == accumulated["adjustment_cost"]
            )


class TestLifecycle:
    def test_graceful_stop_drains_queued_work(self, tmp_path):
        from repro.serve.ingest import read_ingest_log

        instance = ServeServer(
            n_nodes=63,
            algorithm="rotor-push",
            queue_limit=8,
            log_dir=str(tmp_path / "log"),
        ).start()
        sock = raw_connection(instance)
        try:
            send_frame(sock, {"type": "open_session", "source": "alpha"})
            assert recv_frame(sock)["type"] == "session"
            instance.pause_engine()
            for reply_id in range(1, 6):
                send_frame(
                    sock,
                    {
                        "type": "request_batch",
                        "id": reply_id,
                        "destinations": [reply_id],
                    },
                )
            # a stats round-trip proves all five enqueues were dispatched
            # (frames on one connection are handled FIFO) before we stop
            send_frame(sock, {"type": "stats"})
            stats = recv_frame(sock)
            assert stats["queues"] == {"alpha": 5}
            # stop with 5 batches still queued: the shutdown drain (which
            # also lifts the pause) must serve every one of them
            instance.stop()
        finally:
            sock.close()
        assert instance.engine.n_requests == 5
        log = read_ingest_log(tmp_path / "log")
        assert len(log.request_records()) == 5
        assert not log.report.truncated

    def test_queue_limit_must_be_positive(self):
        with pytest.raises(ServeError, match="positive"):
            ServeServer(queue_limit=0)

    def test_bad_configuration_fails_before_touching_the_log_dir(self, tmp_path):
        with pytest.raises(ServeError):
            ServeServer(algorithm="static-opt", log_dir=str(tmp_path / "log"))
        assert not (tmp_path / "log").exists()
