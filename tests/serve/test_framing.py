"""The shared wire framing: one codec for both daemons, sync and async.

Pins the satellite contract of the framing extraction: ``repro.dist.framing``
is the single home of the length-prefixed JSON envelope, ``repro.dist.protocol``
re-exports it unchanged (so existing dist code and tests keep working), and
the asyncio codec used by ``repro.serve`` is byte-compatible with the
blocking-socket codec used by ``repro.dist``.
"""

from __future__ import annotations

import asyncio
import socket
import struct

import pytest

from repro.dist import framing
from repro.dist import protocol
from repro.dist.framing import (
    MAX_FRAME,
    ProtocolError,
    decode_frame_body,
    encode_frame,
    parse_listen_address,
    read_frame,
    recv_frame,
    send_frame,
    write_frame,
)
from repro.exceptions import ExperimentError


class TestEnvelope:
    def test_encode_decode_roundtrip(self):
        message = {"type": "reply", "id": 7, "destinations": [1, 2, 3]}
        frame = encode_frame(message)
        length = struct.unpack(">Q", frame[:8])[0]
        assert length == len(frame) - 8
        assert decode_frame_body(frame[8:]) == message

    def test_decode_rejects_non_dict(self):
        with pytest.raises(ProtocolError):
            decode_frame_body(b"[1, 2, 3]")

    def test_decode_rejects_missing_type(self):
        with pytest.raises(ProtocolError):
            decode_frame_body(b'{"id": 1}')

    def test_unicode_survives(self):
        message = {"type": "bind", "source": "café-π"}
        assert decode_frame_body(encode_frame(message)[8:]) == message


class TestBlockingCodec:
    def test_socketpair_roundtrip(self):
        left, right = socket.socketpair()
        try:
            messages = [
                {"type": "hello", "protocol": 1},
                {"type": "request_batch", "id": 2, "destinations": list(range(50))},
            ]
            for message in messages:
                send_frame(left, message)
            for message in messages:
                assert recv_frame(right) == message
        finally:
            left.close()
            right.close()

    def test_eof_mid_frame_raises_connection_error(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">Q", 100) + b'{"type"')
            left.close()
            with pytest.raises(ConnectionError):
                recv_frame(right)
        finally:
            right.close()

    def test_oversized_length_prefix_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">Q", MAX_FRAME + 1))
            with pytest.raises(ProtocolError, match="exceeds"):
                recv_frame(right)
        finally:
            left.close()
            right.close()


class TestAsyncCodec:
    def test_async_roundtrip_and_cross_codec_compat(self):
        """Frames written by the sync codec are read by the async one and
        vice versa — the two daemons genuinely share one wire format."""

        async def scenario():
            server_side, client_side = socket.socketpair()
            server_side.setblocking(False)
            reader, writer = await asyncio.open_connection(sock=server_side)
            try:
                # sync -> async
                send_frame(client_side, {"type": "hello", "protocol": 1})
                assert await read_frame(reader) == {"type": "hello", "protocol": 1}
                # async -> sync
                await write_frame(writer, {"type": "welcome", "n_nodes": 63})
                assert recv_frame(client_side) == {"type": "welcome", "n_nodes": 63}
            finally:
                writer.close()
                client_side.close()

        asyncio.run(scenario())

    def test_async_eof_raises_incomplete_read(self):
        async def scenario():
            server_side, client_side = socket.socketpair()
            server_side.setblocking(False)
            reader, writer = await asyncio.open_connection(sock=server_side)
            try:
                client_side.close()
                with pytest.raises(asyncio.IncompleteReadError):
                    await read_frame(reader)
            finally:
                writer.close()

        asyncio.run(scenario())


class TestDistReExports:
    """The dist protocol module must keep exposing the framing names it
    always had — as the *same* objects, so isinstance checks and
    monkeypatching keep working across the package boundary."""

    def test_same_objects(self):
        assert protocol.send_frame is framing.send_frame
        assert protocol.recv_frame is framing.recv_frame
        assert protocol.ProtocolError is framing.ProtocolError

    def test_protocol_error_is_experiment_error(self):
        assert issubclass(ProtocolError, ExperimentError)


class TestParseListenAddress:
    def test_parses_host_and_port(self):
        assert parse_listen_address("tcp://127.0.0.1:7077") == ("127.0.0.1", 7077)

    @pytest.mark.parametrize(
        "bad", ["127.0.0.1:7077", "tcp://:7077", "tcp://host:", "tcp://host:x", 7]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ExperimentError, match="tcp://HOST:PORT"):
            parse_listen_address(bad)
