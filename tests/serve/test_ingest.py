"""The crash-safe ingest log: rotation, torn tails, mid-log corruption.

The durability contract under test: a crash mid-append damages at most the
tail of the *final* segment, which the reader drops and reports (replay of
everything acknowledged before the tear still works); damage anywhere
earlier means acknowledged records are gone, which is fatal unless the
caller explicitly asks to salvage.
"""

from __future__ import annotations

import json

import pytest

from repro.serve.ingest import (
    DEFAULT_SEGMENT_BYTES,
    INGEST_FORMAT_VERSION,
    IngestError,
    IngestWriter,
    read_ingest_log,
)

HEADER = {"n_nodes": 15, "algorithm": {"name": "rotor-push"}, "base_seed": 0}


def write_records(path, records, segment_bytes=DEFAULT_SEGMENT_BYTES):
    with IngestWriter(path, HEADER, segment_bytes=segment_bytes) as writer:
        for record in records:
            writer.append(record)
    return writer


def sample_records(n_requests=20):
    records = [{"type": "bind", "source": "alpha", "source_id": 0}]
    records.extend(
        {"type": "request", "source_id": 0, "destinations": [i % 15, (i + 3) % 15]}
        for i in range(n_requests)
    )
    return records


class TestRoundtrip:
    def test_records_come_back_identical_and_in_order(self, tmp_path):
        records = sample_records()
        write_records(tmp_path / "log", records)
        log = read_ingest_log(tmp_path / "log")
        assert log.records == records
        assert log.report.records == len(records)
        assert not log.report.truncated
        assert log.report.anomalies == []

    def test_header_round_trips_with_format_version(self, tmp_path):
        write_records(tmp_path / "log", sample_records(2))
        log = read_ingest_log(tmp_path / "log")
        assert log.header["n_nodes"] == 15
        assert log.header["format_version"] == INGEST_FORMAT_VERSION

    def test_helper_views(self, tmp_path):
        records = sample_records(5)
        write_records(tmp_path / "log", records)
        log = read_ingest_log(tmp_path / "log")
        assert len(log.bind_records()) == 1
        assert len(log.request_records()) == 5


class TestRotation:
    def test_small_segments_rotate_and_preserve_order(self, tmp_path):
        records = sample_records(200)
        write_records(tmp_path / "log", records, segment_bytes=512)
        segments = sorted((tmp_path / "log").glob("segment-*.jsonl"))
        assert len(segments) > 3
        log = read_ingest_log(tmp_path / "log")
        assert log.records == records
        assert log.report.segments == len(segments)

    def test_one_record_never_splits_across_segments(self, tmp_path):
        # a record larger than segment_bytes still lands whole in one file
        big = {"type": "request", "source_id": 0, "destinations": list(range(400))}
        write_records(tmp_path / "log", [big, big], segment_bytes=64)
        log = read_ingest_log(tmp_path / "log")
        assert log.records == [big, big]


class TestWriterGuards:
    def test_refuses_non_empty_directory(self, tmp_path):
        target = tmp_path / "log"
        target.mkdir()
        (target / "stray.txt").write_text("x")
        with pytest.raises(IngestError, match="not empty"):
            IngestWriter(target, HEADER)

    def test_append_after_close_raises(self, tmp_path):
        writer = write_records(tmp_path / "log", sample_records(1))
        with pytest.raises(IngestError, match="closed"):
            writer.append({"type": "bind", "source": "x", "source_id": 1})

    def test_rejects_non_positive_segment_bytes(self, tmp_path):
        with pytest.raises(IngestError, match="positive"):
            IngestWriter(tmp_path / "log", HEADER, segment_bytes=0)

    def test_records_written_counter(self, tmp_path):
        writer = write_records(tmp_path / "log", sample_records(7))
        assert writer.records_written == 8  # bind + 7 requests


class TestTornTail:
    """Crash-mid-append damage: dropped and reported, never fatal."""

    def test_garbage_tail_is_dropped_and_reported(self, tmp_path):
        records = sample_records(10)
        write_records(tmp_path / "log", records)
        segment = sorted((tmp_path / "log").glob("segment-*.jsonl"))[-1]
        with open(segment, "ab") as handle:
            handle.write(b"deadbeefdead {\"type\": torn")  # no newline: torn write
        log = read_ingest_log(tmp_path / "log")
        assert log.records == records
        assert log.report.truncated
        assert log.report.dropped == 1
        assert "invalid record" in log.report.anomalies[0]

    def test_half_written_last_record_is_dropped(self, tmp_path):
        records = sample_records(10)
        write_records(tmp_path / "log", records)
        segment = sorted((tmp_path / "log").glob("segment-*.jsonl"))[-1]
        body = segment.read_bytes()
        segment.write_bytes(body[: len(body) - 9])  # tear the final line
        log = read_ingest_log(tmp_path / "log")
        assert log.records == records[:-1]
        assert log.report.truncated

    def test_checksum_mismatch_at_tail_is_dropped(self, tmp_path):
        records = sample_records(5)
        write_records(tmp_path / "log", records)
        segment = sorted((tmp_path / "log").glob("segment-*.jsonl"))[-1]
        lines = segment.read_bytes().splitlines(keepends=True)
        # flip one byte inside the final record's JSON body
        last = bytearray(lines[-1])
        last[20] = (last[20] + 1) % 128
        segment.write_bytes(b"".join(lines[:-1]) + bytes(last))
        log = read_ingest_log(tmp_path / "log")
        assert log.records == records[:-1]
        assert log.report.dropped == 1


class TestMidLogCorruption:
    """Damage before the final segment loses acknowledged records: fatal by
    default, salvageable only on request."""

    def corrupt_first_segment(self, tmp_path):
        records = sample_records(200)
        write_records(tmp_path / "log", records, segment_bytes=512)
        segments = sorted((tmp_path / "log").glob("segment-*.jsonl"))
        assert len(segments) >= 3
        lines = segments[0].read_bytes().splitlines(keepends=True)
        segments[0].write_bytes(b"".join(lines[:2]) + b"garbage line\n" + b"".join(lines[3:]))
        return records, lines

    def test_strict_read_raises(self, tmp_path):
        self.corrupt_first_segment(tmp_path)
        with pytest.raises(IngestError, match="allow_mid_loss"):
            read_ingest_log(tmp_path / "log")

    def test_allow_mid_loss_salvages_prefix_and_reports(self, tmp_path):
        self.corrupt_first_segment(tmp_path)
        log = read_ingest_log(tmp_path / "log", allow_mid_loss=True)
        # everything after the damaged line in that segment is unreachable,
        # but later segments are still read
        assert log.records
        assert log.report.dropped > 0
        assert any("segment-000000" in anomaly for anomaly in log.report.anomalies)


class TestUnusableLogs:
    def test_missing_header_raises(self, tmp_path):
        target = tmp_path / "log"
        target.mkdir()
        with pytest.raises(IngestError, match="header.json"):
            read_ingest_log(target)

    def test_unknown_format_version_refused(self, tmp_path):
        write_records(tmp_path / "log", sample_records(1))
        header_path = tmp_path / "log" / "header.json"
        header = json.loads(header_path.read_text())
        header["format_version"] = INGEST_FORMAT_VERSION + 1
        header_path.write_text(json.dumps(header))
        with pytest.raises(IngestError, match="format version"):
            read_ingest_log(tmp_path / "log")

    def test_corrupt_header_raises(self, tmp_path):
        target = tmp_path / "log"
        target.mkdir()
        (target / "header.json").write_text("{not json")
        with pytest.raises(IngestError, match="unreadable"):
            read_ingest_log(target)
