"""The live serve engine: seed contract, batch invariance, validation.

The determinism crux pinned here: source ``k``'s live tree is built with
exactly the seeds trial 0 of a ``TrialPlan`` with ``base_seed = base_seed +
k * NETWORK_TRIAL_SEED_STRIDE`` would use — so live totals equal a plain
:func:`repro.sim.engine.simulate_stream` run on the concatenated sequence,
which is what makes ``repro replay`` bit-identical without a bespoke
executor.
"""

from __future__ import annotations

import random

import pytest

from repro.plans.execute import NETWORK_TRIAL_SEED_STRIDE, REPLAY_TABLE_COLUMNS
from repro.serve.engine import ServeEngine, ServeError
from repro.serve.ingest import IngestWriter, read_ingest_log
from repro.sim.engine import simulate_stream

N_NODES = 63


def batches_for(source_index, n_batches=12, batch_size=5, seed=99):
    rng = random.Random(seed + source_index)
    return [
        [rng.randrange(N_NODES) for _ in range(batch_size)]
        for _ in range(n_batches)
    ]


class TestSeedContract:
    @pytest.mark.parametrize("base_seed", [0, 17])
    def test_live_totals_match_simulate_stream(self, base_seed):
        engine = ServeEngine(N_NODES, "rotor-push", base_seed=base_seed)
        sources = ["alpha", "beta", "gamma"]
        for source in sources:
            engine.bind(source)
        for index, source in enumerate(sources):
            for batch in batches_for(index):
                engine.submit(source, batch)
        for index, source in enumerate(sources):
            window = base_seed + index * NETWORK_TRIAL_SEED_STRIDE
            sequence = [d for batch in batches_for(index) for d in batch]
            reference = simulate_stream(
                "rotor-push",
                [sequence],
                n_nodes=N_NODES,
                placement_seed=window + 10_000,
                seed=window + 20_000,
                keep_records=False,
            )
            state = engine.source(source)
            assert state.n_requests == reference.n_requests
            assert state.total_access_cost == reference.total_access_cost
            assert state.total_adjustment_cost == reference.total_adjustment_cost

    def test_source_ids_assigned_in_first_bind_order(self):
        engine = ServeEngine(N_NODES, "rotor-push")
        assert engine.bind("zeta").source_id == 0
        assert engine.bind("alpha").source_id == 1
        assert engine.bind("zeta").source_id == 0  # idempotent rebind
        assert [s.name for s in engine.sources] == ["zeta", "alpha"]

    def test_batch_boundaries_do_not_matter(self):
        sequence = [random.Random(7).randrange(N_NODES) for _ in range(120)]
        totals = []
        for sizes in ([120], [1] * 120, [7] * 17 + [1]):
            engine = ServeEngine(N_NODES, "rotor-push")
            engine.bind("s")
            cursor = 0
            for size in sizes:
                engine.submit("s", sequence[cursor : cursor + size])
                cursor += size
            assert cursor == 120
            state = engine.source("s")
            totals.append((state.total_access_cost, state.total_adjustment_cost))
        assert totals[0] == totals[1] == totals[2]

    def test_submit_returns_the_batch_cost_delta(self):
        engine = ServeEngine(N_NODES, "rotor-push")
        engine.bind("s")
        first = engine.submit("s", [3, 9, 27])
        second = engine.submit("s", [3, 9, 27])
        state = engine.source("s")
        assert first["n"] == second["n"] == 3
        assert state.total_access_cost == first["access_cost"] + second["access_cost"]
        assert (
            state.total_adjustment_cost
            == first["adjustment_cost"] + second["adjustment_cost"]
        )


class TestValidation:
    def test_offline_algorithm_rejected_at_construction(self):
        with pytest.raises(ServeError, match="offline"):
            ServeEngine(N_NODES, "static-opt")

    def test_unknown_algorithm_fails_fast(self):
        with pytest.raises(Exception):
            ServeEngine(N_NODES, "no-such-algorithm")

    def test_bad_source_names_rejected(self):
        engine = ServeEngine(N_NODES, "rotor-push")
        for bad in ("", None, 7):
            with pytest.raises(ServeError, match="source name"):
                engine.bind(bad)

    def test_unknown_source_rejected(self):
        engine = ServeEngine(N_NODES, "rotor-push")
        with pytest.raises(ServeError, match="unknown source"):
            engine.submit("ghost", [1])

    @pytest.mark.parametrize("destination", [-1, N_NODES, 10**9])
    def test_out_of_range_destination_rejected(self, destination):
        engine = ServeEngine(N_NODES, "rotor-push")
        engine.bind("s")
        with pytest.raises(ServeError, match="outside"):
            engine.submit("s", [1, destination])

    def test_rejected_batch_leaves_no_trace(self, tmp_path):
        engine = ServeEngine(
            N_NODES,
            "rotor-push",
            log=IngestWriter(tmp_path / "log", {"n_nodes": N_NODES}),
        )
        engine.bind("s")
        with pytest.raises(ServeError):
            engine.submit("s", [1, N_NODES])
        engine.log.close()
        state = engine.source("s")
        assert state.n_requests == 0
        assert state.total_access_cost == 0
        # the log saw the bind but not the rejected batch
        log = read_ingest_log(tmp_path / "log")
        assert [r["type"] for r in log.records] == ["bind"]


class TestLogging:
    def test_bind_and_request_records_in_acceptance_order(self, tmp_path):
        engine = ServeEngine(
            N_NODES,
            "rotor-push",
            log=IngestWriter(tmp_path / "log", {"n_nodes": N_NODES}),
        )
        engine.bind("alpha")
        engine.submit("alpha", [1, 2])
        engine.bind("beta")
        engine.submit("beta", [3])
        engine.submit("alpha", [4])
        engine.log.close()
        log = read_ingest_log(tmp_path / "log")
        assert log.records == [
            {"type": "bind", "source": "alpha", "source_id": 0},
            {"type": "request", "source_id": 0, "destinations": [1, 2]},
            {"type": "bind", "source": "beta", "source_id": 1},
            {"type": "request", "source_id": 1, "destinations": [3]},
            {"type": "request", "source_id": 0, "destinations": [4]},
        ]


class TestReporting:
    def test_cost_table_skips_silent_sources_and_totals(self):
        engine = ServeEngine(N_NODES, "rotor-push")
        engine.bind("served")
        engine.bind("silent")
        outcome = engine.submit("served", [5, 6, 7])
        table = engine.cost_table()
        assert table.name == "serve"
        assert table.columns == REPLAY_TABLE_COLUMNS
        assert [row["source"] for row in table.rows] == ["served", "total"]
        assert table.rows[0]["total_access_cost"] == outcome["access_cost"]
        assert table.rows[1]["n_requests"] == 3

    def test_stats_totals_agree_with_per_source_rows(self):
        engine = ServeEngine(N_NODES, "rotor-push")
        for index, source in enumerate(["a", "b"]):
            engine.bind(source)
            for batch in batches_for(index, n_batches=4):
                engine.submit(source, batch)
        stats = engine.stats()
        assert stats["n_sources"] == 2
        assert stats["n_requests"] == engine.n_requests == 40
        assert stats["total_access_cost"] == sum(
            row["total_access_cost"] for row in stats["sources"]
        )
        assert all(row["batches"] == 4 for row in stats["sources"])
