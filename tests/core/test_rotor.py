"""Unit tests for rotor pointers, global paths, flips and flip-ranks."""

from __future__ import annotations

import pytest

from repro.core import CompleteBinaryTree, RotorState
from repro.exceptions import RotorStateError


class TestConstruction:
    def test_default_pointers_are_left(self, rotor_depth3):
        assert all(direction == 0 for direction in rotor_depth3.pointers())

    def test_pointer_count_matches_internal_nodes(self, tree_depth3):
        assert len(RotorState(tree_depth3).pointers()) == 7

    def test_explicit_pointers(self, tree_depth3):
        state = RotorState(tree_depth3, pointers=[1] * 7)
        assert state.pointed_child(0) == 2

    def test_wrong_pointer_count_raises(self, tree_depth3):
        with pytest.raises(RotorStateError):
            RotorState(tree_depth3, pointers=[0, 1])

    def test_invalid_pointer_value_raises(self, tree_depth3):
        with pytest.raises(RotorStateError):
            RotorState(tree_depth3, pointers=[0, 1, 2, 0, 0, 0, 0])

    def test_single_node_tree_has_no_pointers(self):
        state = RotorState(CompleteBinaryTree(1))
        assert state.pointers() == []
        assert state.global_path() == [0]

    def test_copy_is_independent(self, rotor_depth3):
        clone = rotor_depth3.copy()
        clone.toggle(0)
        assert rotor_depth3.pointer(0) == 0
        assert clone.pointer(0) == 1

    def test_equality(self, tree_depth3):
        assert RotorState(tree_depth3) == RotorState(tree_depth3)
        other = RotorState(tree_depth3)
        other.toggle(0)
        assert RotorState(tree_depth3) != other


class TestPointers:
    def test_toggle_flips_and_returns_new_direction(self, rotor_depth3):
        assert rotor_depth3.toggle(0) == 1
        assert rotor_depth3.toggle(0) == 0

    def test_pointer_of_leaf_raises(self, rotor_depth3):
        with pytest.raises(RotorStateError):
            rotor_depth3.pointer(7)
        with pytest.raises(RotorStateError):
            rotor_depth3.toggle(7)

    def test_set_pointer(self, rotor_depth3):
        rotor_depth3.set_pointer(1, 1)
        assert rotor_depth3.pointed_child(1) == 4

    def test_set_pointer_invalid_direction(self, rotor_depth3):
        with pytest.raises(RotorStateError):
            rotor_depth3.set_pointer(1, 5)

    def test_reset(self, rotor_depth3):
        rotor_depth3.toggle(0)
        rotor_depth3.toggle(3)
        rotor_depth3.reset()
        assert all(direction == 0 for direction in rotor_depth3.pointers())

    def test_reset_to_right(self, rotor_depth3):
        rotor_depth3.reset(direction=1)
        assert all(direction == 1 for direction in rotor_depth3.pointers())

    def test_apply_pointer_assignment(self, rotor_depth3):
        rotor_depth3.apply_pointer_assignment([1, 0, 1, 0, 1, 0, 1])
        assert rotor_depth3.pointers() == [1, 0, 1, 0, 1, 0, 1]

    def test_apply_pointer_assignment_wrong_length(self, rotor_depth3):
        with pytest.raises(RotorStateError):
            rotor_depth3.apply_pointer_assignment([0, 1])


class TestGlobalPath:
    def test_initial_global_path_is_leftmost(self, rotor_depth3):
        assert rotor_depth3.global_path() == [0, 1, 3, 7]

    def test_global_path_truncation(self, rotor_depth3):
        assert rotor_depth3.global_path(down_to_level=2) == [0, 1, 3]

    def test_global_path_node(self, rotor_depth3):
        assert rotor_depth3.global_path_node(2) == 3

    def test_global_path_after_toggle(self, rotor_depth3):
        rotor_depth3.toggle(0)
        assert rotor_depth3.global_path() == [0, 2, 5, 11]

    def test_on_global_path(self, rotor_depth3):
        assert rotor_depth3.on_global_path(3)
        assert not rotor_depth3.on_global_path(4)

    def test_global_path_bad_level(self, rotor_depth3):
        with pytest.raises(RotorStateError):
            rotor_depth3.global_path(down_to_level=9)


class TestFlip:
    def test_flip_toggles_only_path_prefix(self, rotor_depth3):
        before = rotor_depth3.pointers()
        path = rotor_depth3.flip(2)
        after = rotor_depth3.pointers()
        assert path == [0, 1, 3]
        # Pointers at nodes 0 and 1 toggled, everything else unchanged.
        assert after[0] != before[0]
        assert after[1] != before[1]
        assert after[2:] == before[2:]

    def test_flip_zero_is_noop(self, rotor_depth3):
        before = rotor_depth3.pointers()
        rotor_depth3.flip(0)
        assert rotor_depth3.pointers() == before

    def test_flip_bad_level(self, rotor_depth3):
        with pytest.raises(RotorStateError):
            rotor_depth3.flip(10)

    def test_repeated_full_flips_cycle_through_all_leaves(self, rotor_depth3):
        depth = 3
        visited = set()
        for _ in range(1 << depth):
            visited.add(rotor_depth3.global_path_node(depth))
            rotor_depth3.flip(depth)
        assert visited == set(range(7, 15))

    def test_flip_period_is_two_to_the_level(self, rotor_depth3):
        initial = rotor_depth3.pointers()
        for _ in range(1 << 3):
            rotor_depth3.flip(3)
        assert rotor_depth3.pointers() == initial


class TestFlipRanks:
    def test_figure1_initial_flip_ranks(self, rotor_depth3):
        """The leaf flip-ranks of the all-left state match Figure 1 of the paper."""
        assert rotor_depth3.flip_ranks_at_level(3) == [0, 4, 2, 6, 1, 5, 3, 7]
        assert rotor_depth3.flip_ranks_at_level(2) == [0, 2, 1, 3]
        assert rotor_depth3.flip_ranks_at_level(1) == [0, 1]
        assert rotor_depth3.flip_ranks_at_level(0) == [0]

    def test_flip_ranks_are_permutation_at_every_level(self, rotor_depth3):
        rotor_depth3.validate()
        rotor_depth3.toggle(0)
        rotor_depth3.toggle(4)
        rotor_depth3.validate()

    def test_flip_rank_zero_iff_on_global_path(self, rotor_depth3):
        for node in range(15):
            on_path = rotor_depth3.on_global_path(node)
            assert (rotor_depth3.flip_rank(node) == 0) == on_path

    def test_flip_rank_definition_matches_simulation(self, tree_depth3):
        """frnk(u) is the number of flips after which u joins the global path."""
        state = RotorState(tree_depth3, pointers=[1, 0, 1, 0, 0, 1, 0])
        for level in range(4):
            visited = state.simulate_flip_sequence(level, (1 << level) - 1)
            for node in tree_depth3.nodes_at_level(level):
                assert visited[state.flip_rank(node)] == node

    def test_lemma2_recursive_decomposition(self, tree_depth3):
        """frnk_T(v) = frnk_T(u) + frnk_{T[u]}(v) * 2**level(u) for ancestors u."""
        state = RotorState(tree_depth3, pointers=[1, 1, 0, 0, 1, 0, 1])
        for node in range(15):
            for level in range(tree_depth3.level(node) + 1):
                ancestor = tree_depth3.ancestor_at_level(node, level)
                expected = state.flip_rank(ancestor) + state.flip_rank_within(
                    ancestor, node
                ) * (1 << level)
                assert state.flip_rank(node) == expected

    def test_flip_rank_within_requires_ancestor(self, rotor_depth3):
        with pytest.raises(RotorStateError):
            rotor_depth3.flip_rank_within(1, 14)

    def test_node_with_flip_rank_inverts_flip_rank(self, rotor_depth3):
        rotor_depth3.toggle(0)
        rotor_depth3.toggle(2)
        for level in range(4):
            for rank in range(1 << level):
                node = rotor_depth3.node_with_flip_rank(level, rank)
                assert rotor_depth3.flip_rank(node) == rank

    def test_node_with_flip_rank_bad_rank(self, rotor_depth3):
        with pytest.raises(RotorStateError):
            rotor_depth3.node_with_flip_rank(2, 4)

    def test_lemma3_flip_decreases_ranks_on_shallow_levels(self, rotor_depth3):
        """After flip(d), a node at level <= d with rank 0 wraps to 2**d - 1, others drop by 1."""
        depth = 2
        before = {node: rotor_depth3.flip_rank(node) for node in range(7)}
        rotor_depth3.flip(depth)
        for node, old_rank in before.items():
            level = (node + 1).bit_length() - 1
            if level > depth:
                continue
            new_rank = rotor_depth3.flip_rank(node)
            if old_rank == 0:
                assert new_rank == (1 << level) - 1
            else:
                assert new_rank == old_rank - 1

    def test_simulate_flip_sequence_restores_state(self, rotor_depth3):
        before = rotor_depth3.pointers()
        rotor_depth3.simulate_flip_sequence(3, 5)
        assert rotor_depth3.pointers() == before

    def test_simulate_flip_sequence_negative_count(self, rotor_depth3):
        with pytest.raises(RotorStateError):
            rotor_depth3.simulate_flip_sequence(2, -1)
