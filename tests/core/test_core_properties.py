"""Property-based tests (hypothesis) for the core substrate invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CompleteBinaryTree, RotorState, TreeNetwork
from repro.core.pushdown import (
    apply_pushdown_cycle,
    apply_pushdown_swaps,
    pushdown_swap_cost,
)

# Depths 1..5 keep trees between 3 and 63 nodes: large enough to be interesting,
# small enough for hypothesis to explore many cases.
depths = st.integers(min_value=1, max_value=5)


@st.composite
def tree_and_two_nodes_same_level(draw):
    """A tree plus two (possibly equal) nodes drawn from the same level."""
    depth = draw(depths)
    tree = CompleteBinaryTree.from_depth(depth)
    level = draw(st.integers(min_value=0, max_value=depth))
    size = tree.level_size(level)
    u = tree.node_at(level, draw(st.integers(min_value=0, max_value=size - 1)))
    v = tree.node_at(level, draw(st.integers(min_value=0, max_value=size - 1)))
    return tree, u, v


@st.composite
def rotor_states(draw):
    """A rotor state with arbitrary pointer directions."""
    depth = draw(depths)
    tree = CompleteBinaryTree.from_depth(depth)
    n_internal = (1 << depth) - 1
    pointers = draw(
        st.lists(st.integers(min_value=0, max_value=1), min_size=n_internal, max_size=n_internal)
    )
    return RotorState(tree, pointers=pointers)


class TestTreeProperties:
    @given(depths, st.integers(min_value=0, max_value=62))
    def test_parent_child_inverse(self, depth, node_index):
        tree = CompleteBinaryTree.from_depth(depth)
        node = node_index % tree.n_nodes
        if node != 0:
            parent = tree.parent(node)
            assert node in tree.children(parent)
            assert tree.level(parent) == tree.level(node) - 1

    @given(depths, st.integers(min_value=0, max_value=62), st.integers(min_value=0, max_value=62))
    def test_distance_is_a_metric(self, depth, first_index, second_index):
        tree = CompleteBinaryTree.from_depth(depth)
        a = first_index % tree.n_nodes
        b = second_index % tree.n_nodes
        assert tree.distance(a, a) == 0
        assert tree.distance(a, b) == tree.distance(b, a)
        assert tree.distance(a, b) <= tree.distance(a, 0) + tree.distance(0, b)

    @given(depths, st.integers(min_value=0, max_value=62), st.integers(min_value=0, max_value=62))
    def test_path_between_consecutive_nodes_adjacent(self, depth, first_index, second_index):
        tree = CompleteBinaryTree.from_depth(depth)
        a = first_index % tree.n_nodes
        b = second_index % tree.n_nodes
        path = tree.path_between(a, b)
        assert path[0] == a and path[-1] == b
        assert len(path) == tree.distance(a, b) + 1
        for previous, current in zip(path, path[1:]):
            adjacent = (previous != 0 and tree.parent(previous) == current) or (
                current != 0 and tree.parent(current) == previous
            )
            assert adjacent

    @given(depths)
    def test_level_sizes_sum_to_node_count(self, depth):
        tree = CompleteBinaryTree.from_depth(depth)
        assert sum(tree.level_size(level) for level in range(depth + 1)) == tree.n_nodes


class TestRotorProperties:
    @given(rotor_states())
    def test_flip_ranks_form_permutations(self, state):
        state.validate()

    @given(rotor_states(), st.integers(min_value=0, max_value=5))
    def test_flip_preserves_permutation_invariant(self, state, level):
        level = min(level, state.tree.depth)
        state.flip(level)
        state.validate()

    @given(rotor_states())
    def test_global_path_nodes_have_rank_zero(self, state):
        for level, node in enumerate(state.global_path()):
            assert state.flip_rank(node) == 0
            assert state.tree.level(node) == level

    @given(rotor_states(), st.integers(min_value=0, max_value=5))
    def test_flip_rank_inverse(self, state, level):
        level = min(level, state.tree.depth)
        for rank in range(1 << level):
            node = state.node_with_flip_rank(level, rank)
            assert state.flip_rank(node) == rank

    @given(rotor_states())
    @settings(max_examples=25)
    def test_full_flip_cycle_returns_to_start(self, state):
        depth = state.tree.depth
        initial = state.pointers()
        for _ in range(1 << depth):
            state.flip(depth)
        assert state.pointers() == initial


class TestPushdownProperties:
    @given(tree_and_two_nodes_same_level())
    @settings(max_examples=60)
    def test_swap_and_cycle_realisations_agree(self, data):
        tree, u, v = data
        swap_network = TreeNetwork(tree)
        cycle_network = TreeNetwork(tree)
        swap_network.ledger.open_request(0, 0)
        performed = apply_pushdown_swaps(swap_network, u, v)
        swap_network.ledger.close_request()
        cycle_network.ledger.open_request(0, 0)
        charged = apply_pushdown_cycle(cycle_network, u, v)
        cycle_network.ledger.close_request()
        assert swap_network.placement() == cycle_network.placement()
        assert performed == charged == pushdown_swap_cost(swap_network, u, v)
        swap_network.validate()

    @given(tree_and_two_nodes_same_level())
    @settings(max_examples=60)
    def test_pushdown_moves_requested_element_to_root(self, data):
        tree, u, v = data
        network = TreeNetwork(tree)
        requested = network.element_at(u)
        network.ledger.open_request(requested, tree.level(u))
        apply_pushdown_swaps(network, u, v)
        network.ledger.close_request()
        assert network.element_at(0) == requested

    @given(tree_and_two_nodes_same_level())
    @settings(max_examples=60)
    def test_pushdown_only_touches_cycle_nodes(self, data):
        tree, u, v = data
        network = TreeNetwork(tree)
        before = network.placement()
        cycle = set(tree.path_from_root(v)) | {u}
        network.ledger.open_request(0, 0)
        apply_pushdown_swaps(network, u, v)
        network.ledger.close_request()
        after = network.placement()
        for node in range(tree.n_nodes):
            if node not in cycle:
                assert after[node] == before[node]

    @given(tree_and_two_nodes_same_level())
    @settings(max_examples=60)
    def test_total_cost_within_lemma1_bound(self, data):
        tree, u, v = data
        network = TreeNetwork(tree)
        level = tree.level(u)
        swaps = pushdown_swap_cost(network, u, v)
        assert (level + 1) + swaps <= 4 * level + 1
