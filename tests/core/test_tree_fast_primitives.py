"""The trusted bit-arithmetic tree primitives agree with the checked methods.

The serve fast paths inline these identities; these tests pin the module-level
canonical forms (:func:`node_level`, :func:`node_distance`, :func:`root_path`)
against the validated :class:`CompleteBinaryTree` queries over whole trees.
"""

from __future__ import annotations

import random

import pytest

from repro.core.tree import CompleteBinaryTree, node_distance, node_level, root_path


@pytest.fixture(scope="module")
def tree() -> CompleteBinaryTree:
    return CompleteBinaryTree.from_depth(6)  # 127 nodes


def test_node_level_matches_checked_level(tree):
    for node in range(tree.n_nodes):
        assert node_level(node) == tree.level(node)


def test_root_path_matches_checked_path(tree):
    for node in range(tree.n_nodes):
        assert root_path(node) == tree.path_from_root(node)


def test_node_distance_matches_checked_distance(tree):
    rng = random.Random(13)
    pairs = [(0, 0), (0, tree.n_nodes - 1)] + [
        (rng.randrange(tree.n_nodes), rng.randrange(tree.n_nodes))
        for _ in range(300)
    ]
    for a, b in pairs:
        assert node_distance(a, b) == tree.distance(a, b)
        assert node_distance(a, b) == node_distance(b, a)
