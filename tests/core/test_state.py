"""Unit tests for the TreeNetwork state (placement, swaps, marking, cycles)."""

from __future__ import annotations

import pytest

from repro.core import CompleteBinaryTree, TreeNetwork
from repro.core.state import identity_placement, random_placement
from repro.exceptions import MappingError, SwapError


class TestPlacements:
    def test_identity_placement(self):
        assert identity_placement(7) == list(range(7))

    def test_random_placement_is_permutation(self, rng):
        placement = random_placement(31, rng)
        assert sorted(placement) == list(range(31))

    def test_random_placement_reproducible(self):
        import random

        first = random_placement(31, random.Random(5))
        second = random_placement(31, random.Random(5))
        assert first == second

    def test_with_random_placement_factory(self, tree_depth3):
        network = TreeNetwork.with_random_placement(tree_depth3, seed=9, with_rotor=True)
        network.validate()
        assert network.rotor is not None


class TestMapping:
    def test_identity_mapping_roundtrip(self, network_depth3):
        for element in range(15):
            assert network_depth3.element_at(network_depth3.node_of(element)) == element

    def test_level_of(self, network_depth3):
        assert network_depth3.level_of(0) == 0
        assert network_depth3.level_of(7) == 3

    def test_elements_at_level(self, network_depth3):
        assert network_depth3.elements_at_level(1) == [1, 2]

    def test_placement_copy_is_detached(self, network_depth3):
        placement = network_depth3.placement()
        placement[0] = 99
        assert network_depth3.element_at(0) == 0

    def test_element_positions(self, network_depth3):
        positions = network_depth3.element_positions()
        assert positions[0] == 0
        assert len(positions) == 15

    def test_bad_placement_length(self, tree_depth3):
        with pytest.raises(MappingError):
            TreeNetwork(tree_depth3, placement=[0, 1, 2])

    def test_non_bijective_placement(self, tree_depth3):
        with pytest.raises(MappingError):
            TreeNetwork(tree_depth3, placement=[0] * 15)

    def test_unknown_element(self, network_depth3):
        with pytest.raises(MappingError):
            network_depth3.node_of(100)

    def test_reset_placement(self, network_depth3):
        new_placement = list(reversed(range(15)))
        network_depth3.reset_placement(new_placement)
        network_depth3.validate()
        assert network_depth3.element_at(0) == 14

    def test_levels_view(self, network_depth3):
        view = network_depth3.levels_view()
        assert view[0] == [0]
        assert view[3] == list(range(7, 15))


class TestSwaps:
    def test_swap_adjacent(self, network_depth3):
        network_depth3.ledger.open_request(0, 0)
        network_depth3.swap(0, 1)
        assert network_depth3.element_at(0) == 1
        assert network_depth3.element_at(1) == 0
        record = network_depth3.ledger.close_request()
        assert record.adjustment_cost == 1

    def test_swap_non_adjacent_raises(self, network_depth3):
        network_depth3.ledger.open_request(0, 0)
        with pytest.raises(SwapError):
            network_depth3.swap(0, 3)

    def test_swap_with_parent(self, network_depth3):
        network_depth3.ledger.open_request(0, 0)
        parent = network_depth3.swap_with_parent(3)
        assert parent == 1
        assert network_depth3.element_at(1) == 3

    def test_swap_without_charge(self, network_depth3):
        network_depth3.ledger.open_request(0, 0)
        network_depth3.swap(0, 1, charge=False)
        assert network_depth3.ledger.close_request().adjustment_cost == 0

    def test_swap_preserves_bijection(self, network_depth5_random):
        network_depth5_random.ledger.open_request(0, 0)
        network_depth5_random.swap(0, 2)
        network_depth5_random.swap(2, 6)
        network_depth5_random.validate()


class TestMarking:
    def test_access_marks_root_path(self, tree_depth3):
        network = TreeNetwork(tree_depth3, enforce_marking=True)
        network.access(11)
        for node in (11, 5, 2, 0):
            assert network.is_marked(node)
        assert not network.is_marked(1)
        network.finish_request()

    def test_swap_of_unmarked_nodes_rejected(self, tree_depth3):
        network = TreeNetwork(tree_depth3, enforce_marking=True)
        network.access(11)
        with pytest.raises(SwapError):
            network.swap(1, 3)
        network.finish_request()

    def test_swap_spreads_marking(self, tree_depth3):
        network = TreeNetwork(tree_depth3, enforce_marking=True)
        network.access(11)
        network.swap(2, 6)  # node 2 is marked, node 6 becomes marked
        network.swap(6, 13)  # now legal because 6 is marked
        network.finish_request()

    def test_finish_request_clears_marks(self, tree_depth3):
        network = TreeNetwork(tree_depth3, enforce_marking=True)
        network.access(11)
        network.finish_request()
        assert not network.is_marked(11)

    def test_explicit_mark(self, tree_depth3):
        network = TreeNetwork(tree_depth3, enforce_marking=True)
        network.access(0)
        network.mark(2)
        network.swap(2, 5)
        network.finish_request()


class TestAccessAndCycles:
    def test_access_records_level(self, network_depth3):
        level = network_depth3.access(11)
        assert level == 3
        record = network_depth3.finish_request()
        assert record.access_cost == 4

    def test_apply_cycle_rotates_elements(self, network_depth3):
        network_depth3.ledger.open_request(0, 0)
        network_depth3.apply_cycle([0, 1, 3], charged_swaps=4)
        # element at 0 -> node 1, element at 1 -> node 3, element at 3 -> node 0
        assert network_depth3.element_at(1) == 0
        assert network_depth3.element_at(3) == 1
        assert network_depth3.element_at(0) == 3
        assert network_depth3.ledger.close_request().adjustment_cost == 4
        network_depth3.validate()

    def test_apply_cycle_rejects_duplicates(self, network_depth3):
        network_depth3.ledger.open_request(0, 0)
        with pytest.raises(SwapError):
            network_depth3.apply_cycle([0, 1, 0], charged_swaps=1)

    def test_apply_cycle_rejects_negative_charge(self, network_depth3):
        network_depth3.ledger.open_request(0, 0)
        with pytest.raises(SwapError):
            network_depth3.apply_cycle([0, 1], charged_swaps=-1)

    def test_apply_cycle_single_node_is_noop(self, network_depth3):
        network_depth3.ledger.open_request(0, 0)
        network_depth3.apply_cycle([5], charged_swaps=0)
        assert network_depth3.element_at(5) == 5

    def test_copy_is_independent(self, network_depth3):
        clone = network_depth3.copy()
        clone.ledger.open_request(0, 0)
        clone.swap(0, 1)
        clone.ledger.close_request()
        assert network_depth3.element_at(0) == 0
        assert clone.element_at(0) == 1

    def test_validate_detects_corruption(self, network_depth3):
        network_depth3._elem_at[0] = 1  # type: ignore[attr-defined]
        with pytest.raises(MappingError):
            network_depth3.validate()
