"""Regression tests for the per-algorithm ``backend="auto"`` preference table.

``BENCH_serve.json`` measures the array backend *slower* (0.9×) for the
LRU-index algorithms (move-half, max-push): they serve every request through
the scalar loop, so typed-array placement only adds conversion overhead.  The
preference table in :mod:`repro.core.backend` is the single source of truth
for the auto pick; these tests pin it so a future refactor cannot silently
route them back onto the array backend.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import make_algorithm
from repro.core import backend as backend_mod


def auto_pick(name: str) -> str:
    return make_algorithm(
        name, n_nodes=15, placement_seed=1, seed=2, backend="auto"
    ).network.backend


class TestAutoPreferenceTable:
    @pytest.mark.parametrize("name", ["move-half", "max-push"])
    def test_lru_algorithms_prefer_python(self, name):
        # measured slower on array (speedup_vs_python 0.9 in BENCH_serve.json)
        assert auto_pick(name) == backend_mod.BACKEND_PYTHON
        assert backend_mod.AUTO_BACKEND_PREFERENCES[name] == backend_mod.BACKEND_PYTHON

    @pytest.mark.skipif(not backend_mod.HAS_NUMPY, reason="needs NumPy")
    @pytest.mark.parametrize(
        "name", ["rotor-push", "random-push", "move-to-front", "static-oblivious", "static-opt"]
    )
    def test_vectorised_algorithms_prefer_array_with_numpy(self, name):
        assert auto_pick(name) == backend_mod.BACKEND_ARRAY

    def test_without_numpy_everything_is_python(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "HAS_NUMPY", False)
        for name in backend_mod.AUTO_BACKEND_PREFERENCES:
            assert (
                backend_mod.auto_backend_for(name) == backend_mod.BACKEND_PYTHON
            )

    def test_table_is_consulted_before_the_capability_rule(self, monkeypatch):
        if not backend_mod.HAS_NUMPY:
            pytest.skip("needs NumPy")
        # flip one entry: auto must follow the table, not the capability rule
        monkeypatch.setitem(
            backend_mod.AUTO_BACKEND_PREFERENCES,
            "rotor-push",
            backend_mod.BACKEND_PYTHON,
        )
        assert auto_pick("rotor-push") == backend_mod.BACKEND_PYTHON

    def test_unknown_algorithms_fall_back_to_capability_rule(self):
        if not backend_mod.HAS_NUMPY:
            pytest.skip("needs NumPy")
        assert (
            backend_mod.auto_backend_for("some-new-static", self_adjusting=False)
            == backend_mod.BACKEND_ARRAY
        )
        assert (
            backend_mod.auto_backend_for(
                "some-new-promoter", self_adjusting=True, batch_root_promote=True
            )
            == backend_mod.BACKEND_ARRAY
        )
        assert (
            backend_mod.auto_backend_for("some-new-scalar", self_adjusting=True)
            == backend_mod.BACKEND_PYTHON
        )

    def test_explicit_names_are_never_rerouted(self):
        instance = make_algorithm(
            "move-half", n_nodes=15, placement_seed=1, backend="array"
        )
        assert instance.network.backend == backend_mod.BACKEND_ARRAY
