"""Unit tests for the augmented push-down operation and path relocations."""

from __future__ import annotations

import pytest

from repro.core import CompleteBinaryTree, TreeNetwork
from repro.core.pushdown import (
    apply_pushdown_cycle,
    apply_pushdown_swaps,
    pushdown_cycle_nodes,
    pushdown_swap_cost,
    relocate_along_path,
    relocate_element,
)
from repro.exceptions import SwapError


def make_network(depth: int = 3, with_rotor: bool = False) -> TreeNetwork:
    return TreeNetwork(CompleteBinaryTree.from_depth(depth), with_rotor=with_rotor)


class TestCycleNodes:
    def test_cycle_when_u_differs_from_v(self):
        network = make_network()
        cycle = pushdown_cycle_nodes(network, u=10, v=13)
        assert cycle == [0, 2, 6, 13, 10]

    def test_cycle_when_u_equals_v(self):
        network = make_network()
        assert pushdown_cycle_nodes(network, u=13, v=13) == [0, 2, 6, 13]

    def test_cycle_requires_equal_levels(self):
        network = make_network()
        with pytest.raises(SwapError):
            pushdown_cycle_nodes(network, u=3, v=13)


class TestSwapCost:
    def test_cost_at_root_is_zero(self):
        network = make_network()
        assert pushdown_swap_cost(network, 0, 0) == 0

    def test_cost_when_u_equals_v(self):
        network = make_network()
        assert pushdown_swap_cost(network, 13, 13) == 3

    def test_cost_when_u_differs(self):
        network = make_network()
        assert pushdown_swap_cost(network, 10, 13) == 3 * 3 - 1

    def test_cost_requires_equal_levels(self):
        network = make_network()
        with pytest.raises(SwapError):
            pushdown_swap_cost(network, 1, 13)

    def test_cost_within_lemma1_bound(self):
        """Access cost (d + 1) plus the swap cost never exceeds 4 d (Lemma 1)."""
        network = make_network(depth=5)
        tree = network.tree
        for level in range(1, 6):
            u = tree.node_at(level, 0)
            v = tree.node_at(level, tree.level_size(level) - 1)
            assert (level + 1) + pushdown_swap_cost(network, u, v) <= 4 * level + 1


class TestPushdownSemantics:
    def _expected_cycle_result(self, network, u, v):
        cycle = pushdown_cycle_nodes(network, u, v)
        expected = network.placement()
        moved = [network.element_at(node) for node in cycle]
        for index, node in enumerate(cycle):
            expected[node] = moved[index - 1]
        return expected

    @pytest.mark.parametrize(
        "u,v",
        [
            (7, 7),  # u == v, leftmost leaf
            (7, 14),  # different subtrees of the root (LCA is the root)
            (9, 10),  # same level-1 subtree (LCA below the root)
            (8, 7),  # siblings
            (3, 6),  # internal level
            (1, 2),  # level 1
        ],
    )
    def test_swap_realisation_matches_cycle_definition(self, u, v):
        """The Lemma-1 adjacent-swap procedure realises exactly Definition 1's cycle."""
        swap_network = make_network()
        cycle_network = make_network()
        expected = self._expected_cycle_result(swap_network, u, v)

        swap_network.ledger.open_request(0, 0)
        apply_pushdown_swaps(swap_network, u, v)
        swap_network.ledger.close_request()

        cycle_network.ledger.open_request(0, 0)
        apply_pushdown_cycle(cycle_network, u, v)
        cycle_network.ledger.close_request()

        assert swap_network.placement() == expected
        assert cycle_network.placement() == expected
        swap_network.validate()
        cycle_network.validate()

    @pytest.mark.parametrize("u,v", [(7, 12), (11, 11), (9, 14), (4, 5)])
    def test_both_realisations_charge_identical_costs(self, u, v):
        swap_network = make_network()
        cycle_network = make_network()
        swap_network.ledger.open_request(0, 0)
        swaps_performed = apply_pushdown_swaps(swap_network, u, v)
        swap_record = swap_network.ledger.close_request()
        cycle_network.ledger.open_request(0, 0)
        swaps_charged = apply_pushdown_cycle(cycle_network, u, v)
        cycle_record = cycle_network.ledger.close_request()
        assert swaps_performed == swaps_charged
        assert swap_record.adjustment_cost == cycle_record.adjustment_cost

    def test_requested_element_ends_at_root(self):
        network = make_network()
        requested = network.element_at(10)
        network.ledger.open_request(requested, 3)
        apply_pushdown_swaps(network, 10, 13)
        network.ledger.close_request()
        assert network.element_at(0) == requested

    def test_pushdown_at_root_is_noop(self):
        network = make_network()
        before = network.placement()
        network.ledger.open_request(0, 0)
        assert apply_pushdown_swaps(network, 0, 0) == 0
        network.ledger.close_request()
        assert network.placement() == before

    def test_pushdown_respects_marking_discipline(self):
        network = TreeNetwork(
            CompleteBinaryTree.from_depth(3), enforce_marking=True
        )
        requested = network.element_at(10)
        network.access(requested)
        apply_pushdown_swaps(network, 10, 13)
        network.finish_request()
        assert network.element_at(0) == requested

    def test_mismatched_levels_raise(self):
        network = make_network()
        network.ledger.open_request(0, 0)
        with pytest.raises(SwapError):
            apply_pushdown_swaps(network, 3, 13)


class TestRelocation:
    def test_relocate_along_path_moves_head_element(self):
        network = make_network()
        path = [7, 3, 1, 0]
        network.ledger.open_request(0, 0)
        swaps = relocate_along_path(network, path)
        network.ledger.close_request()
        assert swaps == 3
        assert network.element_at(0) == 7
        # Intermediate elements shift one step towards the start of the path.
        assert network.element_at(7) == 3
        assert network.element_at(3) == 1
        assert network.element_at(1) == 0

    def test_relocate_along_path_single_node(self):
        network = make_network()
        network.ledger.open_request(0, 0)
        assert relocate_along_path(network, [4]) == 0
        network.ledger.close_request()

    def test_relocate_along_empty_path_raises(self):
        network = make_network()
        with pytest.raises(SwapError):
            relocate_along_path(network, [])

    def test_relocate_element_uses_tree_distance(self):
        network = make_network()
        network.ledger.open_request(0, 0)
        swaps = relocate_element(network, 7, 14)
        record = network.ledger.close_request()
        assert swaps == network.tree.distance(7, 14) == 6
        assert record.adjustment_cost == 6
        assert network.element_at(14) == 7

    def test_relocate_element_same_node(self):
        network = make_network()
        network.ledger.open_request(0, 0)
        assert relocate_element(network, 5, 5) == 0
        network.ledger.close_request()
