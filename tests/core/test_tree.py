"""Unit tests for the complete binary tree geometry."""

from __future__ import annotations

import pytest

from repro.core.tree import (
    CompleteBinaryTree,
    depth_for_size,
    is_complete_size,
    size_for_depth,
)
from repro.exceptions import TreeStructureError


class TestSizeHelpers:
    def test_complete_sizes_are_recognised(self):
        assert [is_complete_size(k) for k in (1, 3, 7, 15, 31)] == [True] * 5

    def test_non_complete_sizes_are_rejected(self):
        assert [is_complete_size(k) for k in (0, 2, 4, 6, 8, 100)] == [False] * 6

    def test_negative_size_is_not_complete(self):
        assert not is_complete_size(-7)

    def test_depth_for_size_inverts_size_for_depth(self):
        for depth in range(10):
            assert depth_for_size(size_for_depth(depth)) == depth

    def test_depth_for_size_rejects_bad_sizes(self):
        with pytest.raises(TreeStructureError):
            depth_for_size(10)

    def test_size_for_depth_rejects_negative(self):
        with pytest.raises(TreeStructureError):
            size_for_depth(-1)


class TestConstruction:
    def test_from_depth_matches_size_constructor(self):
        assert CompleteBinaryTree.from_depth(4) == CompleteBinaryTree(31)

    def test_invalid_size_raises(self):
        with pytest.raises(TreeStructureError):
            CompleteBinaryTree(12)

    def test_single_node_tree(self):
        tree = CompleteBinaryTree(1)
        assert tree.depth == 0
        assert tree.is_leaf(0)
        assert list(tree.leaves()) == [0]

    def test_len_and_n_nodes(self):
        tree = CompleteBinaryTree(15)
        assert len(tree) == 15
        assert tree.n_nodes == 15

    def test_equality_and_hash(self):
        assert CompleteBinaryTree(15) == CompleteBinaryTree(15)
        assert CompleteBinaryTree(15) != CompleteBinaryTree(7)
        assert hash(CompleteBinaryTree(15)) == hash(CompleteBinaryTree(15))


class TestNavigation:
    def test_root_properties(self, tree_depth3):
        assert tree_depth3.root == 0
        assert tree_depth3.level(0) == 0

    def test_parent_child_roundtrip(self, tree_depth3):
        for node in range(1, tree_depth3.n_nodes):
            parent = tree_depth3.parent(node)
            assert node in tree_depth3.children(parent)

    def test_parent_of_root_raises(self, tree_depth3):
        with pytest.raises(TreeStructureError):
            tree_depth3.parent(0)

    def test_children_of_leaf_raise(self, tree_depth3):
        leaf = tree_depth3.first_node_at_level(3)
        with pytest.raises(TreeStructureError):
            tree_depth3.left_child(leaf)
        with pytest.raises(TreeStructureError):
            tree_depth3.right_child(leaf)

    def test_child_direction(self, tree_depth3):
        assert tree_depth3.child(0, 0) == 1
        assert tree_depth3.child(0, 1) == 2

    def test_child_invalid_direction(self, tree_depth3):
        with pytest.raises(TreeStructureError):
            tree_depth3.child(0, 2)

    def test_sibling(self, tree_depth3):
        assert tree_depth3.sibling(1) == 2
        assert tree_depth3.sibling(2) == 1

    def test_sibling_of_root_raises(self, tree_depth3):
        with pytest.raises(TreeStructureError):
            tree_depth3.sibling(0)

    def test_is_leaf_and_internal(self, tree_depth3):
        assert tree_depth3.is_internal(0)
        assert all(tree_depth3.is_leaf(node) for node in tree_depth3.leaves())

    def test_node_out_of_range(self, tree_depth3):
        with pytest.raises(TreeStructureError):
            tree_depth3.check_node(15)
        with pytest.raises(TreeStructureError):
            tree_depth3.check_node(-1)


class TestLevels:
    def test_level_of_every_node(self, tree_depth3):
        expected = [0] + [1] * 2 + [2] * 4 + [3] * 8
        assert [tree_depth3.level(node) for node in range(15)] == expected

    def test_level_sizes(self, tree_depth3):
        assert [tree_depth3.level_size(level) for level in range(4)] == [1, 2, 4, 8]

    def test_nodes_at_level(self, tree_depth3):
        assert list(tree_depth3.nodes_at_level(2)) == [3, 4, 5, 6]

    def test_node_at_offset(self, tree_depth3):
        assert tree_depth3.node_at(2, 0) == 3
        assert tree_depth3.node_at(3, 7) == 14

    def test_node_at_bad_offset(self, tree_depth3):
        with pytest.raises(TreeStructureError):
            tree_depth3.node_at(2, 4)

    def test_offset_in_level(self, tree_depth3):
        assert tree_depth3.offset_in_level(3) == 0
        assert tree_depth3.offset_in_level(6) == 3

    def test_level_out_of_range(self, tree_depth3):
        with pytest.raises(TreeStructureError):
            tree_depth3.level_size(4)

    def test_levels_iterator(self, tree_depth3):
        levels = list(tree_depth3.levels())
        assert len(levels) == 4
        assert list(levels[0]) == [0]
        assert list(levels[3]) == list(range(7, 15))


class TestPaths:
    def test_path_to_root(self, tree_depth3):
        assert tree_depth3.path_to_root(11) == [11, 5, 2, 0]

    def test_path_from_root(self, tree_depth3):
        assert tree_depth3.path_from_root(11) == [0, 2, 5, 11]

    def test_ancestor_at_level(self, tree_depth3):
        assert tree_depth3.ancestor_at_level(11, 0) == 0
        assert tree_depth3.ancestor_at_level(11, 1) == 2
        assert tree_depth3.ancestor_at_level(11, 3) == 11

    def test_ancestor_above_node_level_raises(self, tree_depth3):
        with pytest.raises(TreeStructureError):
            tree_depth3.ancestor_at_level(1, 2)

    def test_is_ancestor(self, tree_depth3):
        assert tree_depth3.is_ancestor(0, 11)
        assert tree_depth3.is_ancestor(2, 11)
        assert not tree_depth3.is_ancestor(1, 11)
        assert tree_depth3.is_ancestor(11, 11)

    def test_lowest_common_ancestor(self, tree_depth3):
        assert tree_depth3.lowest_common_ancestor(7, 8) == 3
        assert tree_depth3.lowest_common_ancestor(7, 14) == 0
        assert tree_depth3.lowest_common_ancestor(3, 8) == 3

    def test_distance(self, tree_depth3):
        assert tree_depth3.distance(7, 8) == 2
        assert tree_depth3.distance(0, 7) == 3
        assert tree_depth3.distance(5, 5) == 0

    def test_path_between(self, tree_depth3):
        assert tree_depth3.path_between(7, 8) == [7, 3, 8]
        assert tree_depth3.path_between(7, 4) == [7, 3, 1, 4]
        assert tree_depth3.path_between(5, 5) == [5]

    def test_path_between_is_symmetric(self, tree_depth3):
        forward = tree_depth3.path_between(7, 12)
        backward = tree_depth3.path_between(12, 7)
        assert forward == list(reversed(backward))


class TestSubtrees:
    def test_subtree_nodes(self, tree_depth3):
        assert tree_depth3.subtree_nodes(1) == [1, 3, 4, 7, 8, 9, 10]

    def test_subtree_size(self, tree_depth3):
        assert tree_depth3.subtree_size(0) == 15
        assert tree_depth3.subtree_size(1) == 7
        assert tree_depth3.subtree_size(7) == 1

    def test_descendant_at(self, tree_depth3):
        assert tree_depth3.descendant_at(0, [0, 0, 0]) == 7
        assert tree_depth3.descendant_at(0, [1, 1, 1]) == 14
        assert tree_depth3.descendant_at(2, [0]) == 5

    def test_bfs_order_is_heap_order(self, tree_depth3):
        assert list(tree_depth3.bfs_order()) == list(range(15))

    def test_dfs_preorder_visits_all(self, tree_depth3):
        visited = list(tree_depth3.dfs_preorder())
        assert sorted(visited) == list(range(15))
        assert visited[0] == 0
        assert visited[1] == 1  # left subtree first

    def test_dfs_preorder_of_subtree(self, tree_depth3):
        visited = list(tree_depth3.dfs_preorder(2))
        assert sorted(visited) == [2, 5, 6, 11, 12, 13, 14]
