"""Unit tests for the cost ledger and request cost records."""

from __future__ import annotations

import pytest

from repro.core.cost import CostLedger, RequestCost
from repro.exceptions import CostAccountingError


class TestRequestCost:
    def test_total_cost(self):
        record = RequestCost(element=3, access_cost=5, adjustment_cost=7, level_at_access=4)
        assert record.total_cost == 12

    def test_record_is_frozen(self):
        record = RequestCost(element=3, access_cost=5, adjustment_cost=7, level_at_access=4)
        with pytest.raises(AttributeError):
            record.access_cost = 1  # type: ignore[misc]


class TestLedgerProtocol:
    def test_open_charge_close(self):
        ledger = CostLedger()
        ledger.open_request(element=2, level_at_access=3)
        ledger.charge_swaps(5)
        record = ledger.close_request()
        assert record.access_cost == 4
        assert record.adjustment_cost == 5
        assert record.element == 2

    def test_double_open_raises(self):
        ledger = CostLedger()
        ledger.open_request(0, 0)
        with pytest.raises(CostAccountingError):
            ledger.open_request(1, 1)

    def test_charge_without_open_raises(self):
        with pytest.raises(CostAccountingError):
            CostLedger().charge_swaps(1)

    def test_close_without_open_raises(self):
        with pytest.raises(CostAccountingError):
            CostLedger().close_request()

    def test_negative_level_raises(self):
        with pytest.raises(CostAccountingError):
            CostLedger().open_request(0, -1)

    def test_negative_swaps_raise(self):
        ledger = CostLedger()
        ledger.open_request(0, 0)
        with pytest.raises(CostAccountingError):
            ledger.charge_swaps(-2)

    def test_request_open_flag(self):
        ledger = CostLedger()
        assert not ledger.request_open
        ledger.open_request(0, 0)
        assert ledger.request_open
        ledger.close_request()
        assert not ledger.request_open


class TestAggregation:
    def _serve(self, ledger: CostLedger, element: int, level: int, swaps: int) -> None:
        ledger.open_request(element, level)
        ledger.charge_swaps(swaps)
        ledger.close_request()

    def test_totals_accumulate(self):
        ledger = CostLedger()
        self._serve(ledger, 0, 2, 3)
        self._serve(ledger, 1, 4, 0)
        assert ledger.n_requests == 2
        assert ledger.total_access_cost == 3 + 5
        assert ledger.total_adjustment_cost == 3
        assert ledger.total_cost == 11

    def test_averages(self):
        ledger = CostLedger()
        self._serve(ledger, 0, 1, 2)
        self._serve(ledger, 1, 3, 4)
        assert ledger.average_access_cost() == pytest.approx(3.0)
        assert ledger.average_adjustment_cost() == pytest.approx(3.0)
        assert ledger.average_total_cost() == pytest.approx(6.0)

    def test_averages_with_no_requests(self):
        ledger = CostLedger()
        assert ledger.average_access_cost() == 0.0
        assert ledger.average_adjustment_cost() == 0.0
        assert ledger.average_total_cost() == 0.0

    def test_keep_records_false_drops_history_but_keeps_totals(self):
        ledger = CostLedger(keep_records=False)
        self._serve(ledger, 0, 2, 3)
        self._serve(ledger, 1, 1, 1)
        assert ledger.records == []
        assert ledger.n_requests == 2
        assert ledger.total_cost == 3 + 3 + 2 + 1

    def test_reset(self):
        ledger = CostLedger()
        self._serve(ledger, 0, 2, 3)
        ledger.reset()
        assert ledger.n_requests == 0
        assert ledger.total_cost == 0
        assert ledger.records == []

    def test_reset_while_open_raises(self):
        ledger = CostLedger()
        ledger.open_request(0, 0)
        with pytest.raises(CostAccountingError):
            ledger.reset()

    def test_snapshot_totals(self):
        ledger = CostLedger()
        self._serve(ledger, 0, 2, 3)
        snapshot = ledger.snapshot_totals()
        assert snapshot["n_requests"] == 1
        assert snapshot["total_access_cost"] == 3
        assert snapshot["total_adjustment_cost"] == 3
        assert snapshot["average_total_cost"] == pytest.approx(6.0)
