"""Tests for the text rendering helpers."""

from __future__ import annotations

import pytest

from repro.core import CompleteBinaryTree, TreeNetwork
from repro.core.render import (
    MAX_RENDER_NODES,
    render_figure1_style,
    render_levels,
    render_tree,
)
from repro.exceptions import TreeStructureError


class TestRenderLevels:
    def test_every_level_on_its_own_line(self, network_depth3):
        output = render_levels(network_depth3)
        lines = output.splitlines()
        assert len(lines) == 4
        assert lines[0] == "level 0: e0"
        assert lines[1] == "level 1: e1  e2"

    def test_flip_rank_annotations_match_figure1(self, network_depth3):
        output = render_levels(network_depth3, show_flip_ranks=True)
        # Leaf level of the all-left initial state: flip-ranks 0 4 2 6 1 5 3 7.
        assert "e7/0  e8/4  e9/2  e10/6  e11/1  e12/5  e13/3  e14/7" in output

    def test_flip_ranks_require_rotor(self, tree_depth3):
        network = TreeNetwork(tree_depth3, with_rotor=False)
        with pytest.raises(TreeStructureError):
            render_levels(network, show_flip_ranks=True)

    def test_large_trees_are_refused(self):
        depth = MAX_RENDER_NODES.bit_length()  # guarantees n_nodes > limit
        network = TreeNetwork(CompleteBinaryTree.from_depth(depth))
        with pytest.raises(TreeStructureError):
            render_levels(network)


class TestRenderTree:
    def test_outline_contains_every_node(self, network_depth3):
        output = render_tree(network_depth3)
        for node in range(15):
            assert f"[{node}]" in output

    def test_rotor_pointer_annotations(self, network_depth3):
        output = render_tree(network_depth3)
        assert "->L" in output
        network_depth3.rotor.toggle(0)
        assert "->R" in render_tree(network_depth3)

    def test_subtree_rendering(self, network_depth3):
        output = render_tree(network_depth3, node=2)
        assert "[2]" in output
        assert "[1]" not in output

    def test_render_without_rotor(self, tree_depth3):
        network = TreeNetwork(tree_depth3, with_rotor=False)
        output = render_tree(network)
        assert "->L" not in output


class TestFigure1Style:
    def test_contains_levels_and_global_path(self, network_depth3):
        output = render_figure1_style(network_depth3)
        assert "global path: e0 -> e1 -> e3 -> e7" in output
        assert "level 3" in output

    def test_requires_rotor(self, tree_depth3):
        network = TreeNetwork(tree_depth3, with_rotor=False)
        with pytest.raises(TreeStructureError):
            render_figure1_style(network)

    def test_reflects_algorithm_state(self, network_depth3):
        from repro.algorithms import RotorPush

        algorithm = RotorPush(network_depth3)
        algorithm.serve(5)
        output = render_figure1_style(network_depth3)
        assert output.splitlines()[0] == "level 0: e5/0"
