"""Property-based tests shared by all algorithms (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import PAPER_ALGORITHMS, make_algorithm
from repro.core.tree import CompleteBinaryTree

ALL_NAMES = list(PAPER_ALGORITHMS) + ["move-to-front"]

# Short random request sequences over a 31-element universe.
sequences = st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=60)


def build(name: str, placement_seed: int = 11):
    return make_algorithm(name, n_nodes=31, placement_seed=placement_seed, seed=5)


class TestUniversalInvariants:
    @given(st.sampled_from(ALL_NAMES), sequences)
    @settings(max_examples=60, deadline=None)
    def test_bijection_preserved_by_any_request_sequence(self, name, sequence):
        algorithm = build(name)
        algorithm.run(sequence)
        algorithm.network.validate()

    @given(st.sampled_from(ALL_NAMES), sequences)
    @settings(max_examples=60, deadline=None)
    def test_access_costs_bounded_by_tree_depth(self, name, sequence):
        algorithm = build(name)
        result = algorithm.run(sequence)
        depth = algorithm.network.tree.depth
        for record in result.per_request:
            assert 1 <= record.access_cost <= depth + 1

    @given(st.sampled_from(ALL_NAMES), sequences)
    @settings(max_examples=60, deadline=None)
    def test_costs_are_non_negative_and_consistent(self, name, sequence):
        algorithm = build(name)
        result = algorithm.run(sequence)
        assert result.n_requests == len(sequence)
        assert result.total_access_cost == sum(r.access_cost for r in result.per_request)
        assert result.total_adjustment_cost == sum(
            r.adjustment_cost for r in result.per_request
        )
        assert result.total_adjustment_cost >= 0

    @given(st.sampled_from(["rotor-push", "random-push"]), sequences)
    @settings(max_examples=60, deadline=None)
    def test_push_algorithms_keep_requested_element_at_root(self, name, sequence):
        algorithm = build(name)
        for element in sequence:
            algorithm.serve(element)
            assert algorithm.network.element_at(0) == element

    @given(st.sampled_from(["rotor-push", "random-push"]), sequences)
    @settings(max_examples=60, deadline=None)
    def test_push_algorithm_cost_within_lemma1_bound(self, name, sequence):
        algorithm = build(name)
        for element in sequence:
            level = algorithm.network.level_of(element)
            record = algorithm.serve(element)
            assert record.total_cost <= max(1, 4 * level)

    @given(sequences)
    @settings(max_examples=40, deadline=None)
    def test_rotor_state_invariant_preserved(self, sequence):
        algorithm = build("rotor-push")
        algorithm.run(sequence)
        algorithm.network.rotor.validate()

    @given(st.sampled_from(ALL_NAMES), sequences, st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=40, deadline=None)
    def test_deterministic_algorithms_are_reproducible(self, name, sequence, placement_seed):
        first = make_algorithm(name, n_nodes=31, placement_seed=placement_seed, seed=9)
        second = make_algorithm(name, n_nodes=31, placement_seed=placement_seed, seed=9)
        assert first.run(sequence).total_cost == second.run(sequence).total_cost

    @given(sequences)
    @settings(max_examples=40, deadline=None)
    def test_static_algorithms_never_pay_adjustment(self, sequence):
        for name in ("static-oblivious", "static-opt"):
            algorithm = build(name)
            assert algorithm.run(sequence).total_adjustment_cost == 0

    @given(sequences)
    @settings(max_examples=30, deadline=None)
    def test_static_opt_never_worse_than_oblivious_in_access(self, sequence):
        opt = build("static-opt")
        oblivious = build("static-oblivious")
        assert (
            opt.run(sequence).total_access_cost
            <= oblivious.run(sequence).total_access_cost
        )

    @given(sequences)
    @settings(max_examples=30, deadline=None)
    def test_exact_swaps_and_cycle_paths_agree_for_rotor(self, sequence):
        fast = make_algorithm("rotor-push", n_nodes=31, placement_seed=3)
        exact = make_algorithm("rotor-push", n_nodes=31, placement_seed=3, exact_swaps=True)
        fast_result = fast.run(sequence)
        exact_result = exact.run(sequence)
        assert fast.network.placement() == exact.network.placement()
        assert fast_result.total_cost == exact_result.total_cost
