"""Tests for Static-Oblivious, Static-Opt and the Move-To-Front baseline."""

from __future__ import annotations

import pytest

from repro.algorithms import MoveToFrontTree, StaticOblivious, StaticOpt
from repro.algorithms.static_opt import frequency_placement
from repro.core import CompleteBinaryTree, TreeNetwork
from repro.exceptions import AlgorithmError
from repro.workloads.adversarial import round_robin_path_sequence


class TestStaticOblivious:
    def test_never_moves_elements(self):
        algorithm = StaticOblivious.for_tree(n_nodes=15, placement_seed=4)
        before = algorithm.network.placement()
        algorithm.run([3, 7, 3, 1, 14, 3])
        assert algorithm.network.placement() == before

    def test_zero_adjustment_cost(self):
        algorithm = StaticOblivious.for_tree(n_nodes=15, placement_seed=4)
        result = algorithm.run([3, 7, 3, 1, 14, 3])
        assert result.total_adjustment_cost == 0

    def test_access_cost_is_static_level_plus_one(self):
        algorithm = StaticOblivious.for_tree(n_nodes=15, placement_seed=4)
        level = algorithm.network.level_of(9)
        record = algorithm.serve(9)
        assert record.access_cost == level + 1
        assert algorithm.serve(9).access_cost == level + 1


class TestFrequencyPlacement:
    def test_most_frequent_element_at_root(self):
        placement = frequency_placement(7, [3, 3, 3, 1, 1, 5])
        assert placement[0] == 3
        assert placement[1] == 1
        assert placement[2] == 5

    def test_ties_broken_by_identifier(self):
        placement = frequency_placement(7, [6, 2])
        assert placement[0] == 2
        assert placement[1] == 6

    def test_unrequested_elements_fill_remaining_nodes(self):
        placement = frequency_placement(7, [4])
        assert placement[0] == 4
        assert sorted(placement) == list(range(7))

    def test_out_of_universe_element_raises(self):
        with pytest.raises(AlgorithmError):
            frequency_placement(7, [9])


class TestStaticOpt:
    def test_requires_preparation(self):
        algorithm = StaticOpt.for_tree(n_nodes=15, placement_seed=4)
        with pytest.raises(AlgorithmError):
            algorithm.serve(3)

    def test_run_prepares_automatically(self):
        algorithm = StaticOpt.for_tree(n_nodes=15, placement_seed=4)
        result = algorithm.run([3, 3, 3, 7, 7, 1])
        assert result.n_requests == 6
        assert result.total_adjustment_cost == 0

    def test_most_frequent_element_costs_one(self):
        algorithm = StaticOpt.for_tree(n_nodes=15, placement_seed=4)
        sequence = [5] * 10 + [2] * 3 + [9]
        algorithm.prepare(sequence)
        assert algorithm.serve(5).access_cost == 1

    def test_never_adjusts_after_preparation(self):
        algorithm = StaticOpt.for_tree(n_nodes=15, placement_seed=4)
        sequence = [5, 5, 2, 9, 5]
        algorithm.prepare(sequence)
        placement = algorithm.network.placement()
        for element in sequence:
            algorithm.serve(element)
        assert algorithm.network.placement() == placement

    def test_beats_static_oblivious_on_skewed_input(self):
        sequence = [1] * 500 + [13] * 5 + [7] * 3
        opt = StaticOpt.for_tree(n_nodes=15, placement_seed=4)
        oblivious = StaticOblivious.for_tree(n_nodes=15, placement_seed=4)
        assert opt.run(sequence).total_cost <= oblivious.run(sequence).total_cost


class TestMoveToFront:
    def test_accessed_element_moves_to_root(self):
        algorithm = MoveToFrontTree(TreeNetwork(CompleteBinaryTree.from_depth(3)))
        algorithm.serve(11)
        assert algorithm.network.element_at(0) == 11

    def test_path_elements_pushed_down(self):
        algorithm = MoveToFrontTree(TreeNetwork(CompleteBinaryTree.from_depth(3)))
        algorithm.serve(11)  # access path 0 -> 2 -> 5 -> 11
        assert algorithm.network.element_at(2) == 0
        assert algorithm.network.element_at(5) == 2
        assert algorithm.network.element_at(11) == 5

    def test_adjustment_cost_equals_depth(self):
        algorithm = MoveToFrontTree(TreeNetwork(CompleteBinaryTree.from_depth(3)))
        record = algorithm.serve(11)
        assert record.adjustment_cost == 3

    def test_round_robin_path_keeps_costs_high(self):
        """The Section 1.1 lower-bound scenario: MTF pays ~depth for every request."""
        depth = 5
        algorithm = MoveToFrontTree(TreeNetwork(CompleteBinaryTree.from_depth(depth)))
        sequence = round_robin_path_sequence(depth, (depth + 1) * 20)
        result = algorithm.run(sequence)
        # After the first cycle every request finds its element back at the leaf.
        steady_state = result.per_request[depth + 1 :]
        assert all(record.access_cost == depth + 1 for record in steady_state)

    def test_rotor_push_is_cheaper_on_the_round_robin_path(self):
        """Rotor-Push spreads the path elements out and beats MTF on its bad input."""
        from repro.algorithms import RotorPush

        depth = 5
        sequence = round_robin_path_sequence(depth, (depth + 1) * 40)
        mtf = MoveToFrontTree(TreeNetwork(CompleteBinaryTree.from_depth(depth)))
        rotor = RotorPush(TreeNetwork(CompleteBinaryTree.from_depth(depth), with_rotor=True))
        assert (
            rotor.run(sequence).total_access_cost < mtf.run(sequence).total_access_cost
        )

    def test_bijection_preserved(self, rng):
        algorithm = MoveToFrontTree(TreeNetwork(CompleteBinaryTree.from_depth(4)))
        for _ in range(200):
            algorithm.serve(rng.randrange(31))
        algorithm.network.validate()
