"""Behavioural tests for Rotor-Push, including the Figure 1 worked example."""

from __future__ import annotations

import pytest

from repro.algorithms import RotorPush
from repro.core import CompleteBinaryTree, TreeNetwork
from repro.exceptions import AlgorithmError


def fresh_rotor_push(depth: int = 3, exact_swaps: bool = False) -> RotorPush:
    network = TreeNetwork(CompleteBinaryTree.from_depth(depth), with_rotor=True)
    return RotorPush(network, exact_swaps=exact_swaps)


class TestConstruction:
    def test_requires_rotor_state(self, tree_depth3):
        with pytest.raises(AlgorithmError):
            RotorPush(TreeNetwork(tree_depth3, with_rotor=False))

    def test_for_tree_attaches_rotor(self):
        algorithm = RotorPush.for_tree(depth=3, placement_seed=1)
        assert algorithm.network.rotor is not None

    def test_is_deterministic(self):
        assert RotorPush.is_deterministic is True


class TestFigure1Example:
    """The worked example of Figure 1: serving e6 from the initial all-left state.

    With the identity placement element ``i`` sits at node ``i - 1`` of the
    paper's drawing (the paper numbers elements from 1).  Serving the paper's
    ``e6`` therefore means requesting our element 5 (at node 5, level 2).  The
    paper's "after" tree shows: e6 at the root, e1 pushed to the old position
    of e2, e2 pushed to the old position of e4, e4 moved to the old position of
    e6, and the two topmost rotor pointers toggled.
    """

    def test_resulting_placement_matches_figure(self):
        algorithm = fresh_rotor_push()
        algorithm.serve(5)  # the paper's e6
        network = algorithm.network
        assert network.element_at(0) == 5  # e6 at the root
        assert network.element_at(1) == 0  # e1 one level down along the global path
        assert network.element_at(3) == 1  # e2 pushed to e4's old node
        assert network.element_at(5) == 3  # e4 moved to e6's old node
        # Everything else is untouched.
        for node in (2, 4, 6, 7, 8, 9, 10, 11, 12, 13, 14):
            assert network.element_at(node) == node

    def test_rotor_pointers_after_figure1_request(self):
        algorithm = fresh_rotor_push()
        algorithm.serve(5)
        rotor = algorithm.network.rotor
        # flip(2) toggled the pointers of the two topmost global-path nodes.
        assert rotor.pointer(0) == 1
        assert rotor.pointer(1) == 1
        assert rotor.pointer(2) == 0

    def test_flip_ranks_after_figure1_request(self):
        algorithm = fresh_rotor_push()
        algorithm.serve(5)
        rotor = algorithm.network.rotor
        # After flip(2) the global path runs 0 -> 2 -> 5, so the level-1
        # flip-ranks become (1, 0) and the level-2 flip-ranks (3, 1, 0, 2).
        assert rotor.flip_ranks_at_level(1) == [1, 0]
        assert rotor.flip_ranks_at_level(2) == [3, 1, 0, 2]
        rotor.validate()

    def test_exact_swaps_variant_matches_cycle_variant(self):
        fast = fresh_rotor_push(exact_swaps=False)
        exact = fresh_rotor_push(exact_swaps=True)
        for element in (5, 11, 3, 5, 14, 0, 7):
            fast.serve(element)
            exact.serve(element)
        assert fast.network.placement() == exact.network.placement()
        assert (
            fast.network.ledger.total_cost == exact.network.ledger.total_cost
        )


class TestServeBehaviour:
    def test_requested_element_always_lands_at_root(self):
        algorithm = fresh_rotor_push(depth=4)
        for element in (7, 19, 2, 30, 7, 12):
            algorithm.serve(element)
            assert algorithm.network.element_at(0) == element

    def test_request_to_root_element_is_free_of_swaps(self):
        algorithm = fresh_rotor_push()
        first = algorithm.serve(0)
        assert first.access_cost == 1
        assert first.adjustment_cost == 0

    def test_cost_bounded_by_four_times_depth(self):
        algorithm = fresh_rotor_push(depth=5)
        for element in range(0, 63, 5):
            level = algorithm.network.level_of(element)
            record = algorithm.serve(element)
            assert record.total_cost <= max(1, 4 * level)

    def test_global_path_elements_are_pushed_one_level_down(self):
        algorithm = fresh_rotor_push(depth=4)
        rotor = algorithm.network.rotor
        path_before = rotor.global_path()
        # Request the element at the global-path leaf: u == v, pure push-down.
        leaf = path_before[-1]
        element = algorithm.network.element_at(leaf)
        displaced = [algorithm.network.element_at(node) for node in path_before[:-1]]
        algorithm.serve(element)
        for index, node in enumerate(path_before[1:], start=1):
            assert algorithm.network.element_at(node) == displaced[index - 1]

    def test_determinism_across_instances(self):
        first = fresh_rotor_push(depth=4)
        second = fresh_rotor_push(depth=4)
        sequence = [3, 17, 8, 3, 25, 30, 1, 3]
        first_result = first.run(sequence)
        second_result = second.run(sequence)
        assert first_result.total_cost == second_result.total_cost
        assert first.network.placement() == second.network.placement()

    def test_bijection_preserved_over_long_run(self, rng):
        algorithm = fresh_rotor_push(depth=4)
        for _ in range(300):
            algorithm.serve(rng.randrange(31))
        algorithm.network.validate()
        algorithm.network.rotor.validate()

    def test_repeated_requests_to_same_element_become_cheap(self):
        algorithm = fresh_rotor_push(depth=5)
        costs = [algorithm.serve(40).total_cost for _ in range(4)]
        assert costs[1] == 1  # already at the root, no swaps
        assert costs[-1] <= costs[0]
