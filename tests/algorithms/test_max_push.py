"""Behavioural tests for Max-Push (Strict-MRU)."""

from __future__ import annotations

import pytest

from repro.algorithms import MaxPush
from repro.core import CompleteBinaryTree, TreeNetwork


def fresh_max_push(depth: int = 3) -> MaxPush:
    return MaxPush(TreeNetwork(CompleteBinaryTree.from_depth(depth)))


def recency_order_is_mru(algorithm: MaxPush) -> bool:
    """Check the strict-MRU invariant: along every root path, recency never increases."""
    network = algorithm.network
    tree = network.tree
    last_access = {
        element: algorithm._lru.last_access(element) for element in range(tree.n_nodes)
    }
    for node in range(1, tree.n_nodes):
        parent = tree.parent(node)
        if last_access[network.element_at(node)] > last_access[network.element_at(parent)]:
            return False
    return True


class TestServeBehaviour:
    def test_accessed_element_moves_to_root(self):
        algorithm = fresh_max_push()
        algorithm.serve(13)
        assert algorithm.network.element_at(0) == 13

    def test_root_access_is_noop(self):
        algorithm = fresh_max_push()
        record = algorithm.serve(0)
        assert record.adjustment_cost == 0

    def test_one_element_demoted_per_level(self):
        algorithm = fresh_max_push()
        before_levels = {
            element: algorithm.network.level_of(element) for element in range(15)
        }
        algorithm.serve(13)  # level 3 access
        after_levels = {
            element: algorithm.network.level_of(element) for element in range(15)
        }
        # The accessed element jumps to the root; exactly one element per level
        # 0..2 moves one level down; one level-3 element moves within level 3.
        changed = {e for e in range(15) if before_levels[e] != after_levels[e]}
        demoted = changed - {13}
        assert after_levels[13] == 0
        assert len(demoted) == 3
        for element in demoted:
            assert after_levels[element] == before_levels[element] + 1

    def test_adjustment_cost_reflects_travel_distances(self):
        algorithm = fresh_max_push()
        record = algorithm.serve(13)
        # Cost must at least cover moving the element up 3 levels and is bounded
        # by a constant times depth squared.
        assert record.adjustment_cost >= 3
        assert record.adjustment_cost <= 4 * 3 * 3

    def test_mru_invariant_holds_after_each_request(self, rng):
        algorithm = fresh_max_push(depth=4)
        # Warm up: touch every element once so recencies are well defined.
        for element in range(31):
            algorithm.serve(element)
        assert recency_order_is_mru(algorithm)
        for _ in range(200):
            algorithm.serve(rng.randrange(31))
            assert recency_order_is_mru(algorithm)

    def test_access_cost_matches_working_set_after_warmup(self, rng):
        """Strict MRU order implies the working-set property for access costs."""
        import math

        from repro.analysis.working_set import ranks_of_sequence

        algorithm = fresh_max_push(depth=4)
        warmup = list(range(31))
        for element in warmup:
            algorithm.serve(element)
        sequence = [rng.randrange(31) for _ in range(300)]
        records = [algorithm.serve(element) for element in sequence]
        ranks = ranks_of_sequence(warmup + sequence)[len(warmup):]
        for record, rank in zip(records, ranks):
            # Access cost is at most log2(rank) + 2: the element's level cannot
            # exceed the number of full levels occupied by its working set.
            assert record.access_cost <= math.log2(max(rank, 1)) + 2

    def test_bijection_and_index_consistency(self, rng):
        algorithm = fresh_max_push(depth=4)
        for _ in range(300):
            algorithm.serve(rng.randrange(31))
        algorithm.network.validate()
        algorithm._lru.validate_against(algorithm.network)

    def test_is_deterministic(self):
        sequence = [13, 4, 9, 13, 2, 7, 11]
        assert (
            fresh_max_push().run(sequence).total_cost
            == fresh_max_push().run(sequence).total_cost
        )

    def test_repeat_run_batching_matches_request_by_request(self, rng):
        """serve_batch settles repeat runs with one clock bump; victim
        selection, placements, totals and records must stay identical."""
        sequence = []
        while len(sequence) < 600:
            element = rng.randrange(31)
            sequence.extend([element] * rng.randrange(1, 6))
        reference = fresh_max_push(depth=4)
        for element in sequence:
            reference.serve(element)
        batched = fresh_max_push(depth=4)
        for start in range(0, len(sequence), 37):
            batched.serve_batch(sequence[start : start + 37])
        assert batched.network.placement() == reference.network.placement()
        assert (
            batched.network.ledger.snapshot_totals()
            == reference.network.ledger.snapshot_totals()
        )
        assert list(batched.network.ledger.records) == list(
            reference.network.ledger.records
        )
        batched._lru.validate_against(batched.network)
        # the batched clock advanced once per request, exactly like serial
        assert batched._lru._clock == reference._lru._clock

    def test_record_repeats_equals_repeated_record_access(self):
        serial_algorithm = fresh_max_push()
        batched_algorithm = fresh_max_push()
        serial, batched = serial_algorithm._lru, batched_algorithm._lru
        for _ in range(5):
            serial.record_access(3)
        batched.record_repeats(3, 5)
        assert serial._clock == batched._clock
        assert serial.last_access(3) == batched.last_access(3)
        for level in range(4):
            assert serial.least_recently_used(
                level, exclude=3
            ) == batched.least_recently_used(level, exclude=3)
        batched.record_repeats(3, 0)  # no-op
        assert serial._clock == batched._clock

    def test_adjustment_cost_higher_than_rotor_push(self, rng):
        """The paper's evaluation: Max-Push pays the highest adjustment cost."""
        from repro.algorithms import RotorPush

        sequence = [rng.randrange(63) for _ in range(1_500)]
        max_push = MaxPush(TreeNetwork(CompleteBinaryTree.from_depth(5)))
        rotor = RotorPush(TreeNetwork(CompleteBinaryTree.from_depth(5), with_rotor=True))
        max_result = max_push.run(sequence)
        rotor_result = rotor.run(sequence)
        assert max_result.average_adjustment_cost > rotor_result.average_adjustment_cost
