"""Tests for the algorithm base class, run results and the registry/factory."""

from __future__ import annotations

import pytest

from repro.algorithms import (
    ALGORITHMS,
    PAPER_ALGORITHMS,
    SELF_ADJUSTING_ALGORITHMS,
    OnlineTreeAlgorithm,
    RotorPush,
    StaticOblivious,
    available_algorithms,
    get_algorithm_class,
    make_algorithm,
)
from repro.algorithms.base import RunResult
from repro.exceptions import AlgorithmError


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        for name in PAPER_ALGORITHMS:
            assert name in ALGORITHMS

    def test_self_adjusting_subset(self):
        for name in SELF_ADJUSTING_ALGORITHMS:
            assert get_algorithm_class(name).is_self_adjusting

    def test_available_algorithms_contains_baseline(self):
        assert "move-to-front" in available_algorithms()

    def test_unknown_algorithm_raises(self):
        with pytest.raises(AlgorithmError):
            get_algorithm_class("does-not-exist")

    def test_registry_names_match_class_attribute(self):
        for name, cls in ALGORITHMS.items():
            assert cls.name == name

    def test_make_algorithm_by_nodes(self):
        algorithm = make_algorithm("rotor-push", n_nodes=31, placement_seed=1)
        assert isinstance(algorithm, RotorPush)
        assert algorithm.network.tree.n_nodes == 31

    def test_make_algorithm_by_depth(self):
        algorithm = make_algorithm("static-oblivious", depth=4, placement_seed=1)
        assert algorithm.network.tree.depth == 4

    def test_make_algorithm_requires_exactly_one_size(self):
        with pytest.raises(AlgorithmError):
            make_algorithm("rotor-push", n_nodes=31, depth=4)
        with pytest.raises(AlgorithmError):
            make_algorithm("rotor-push")

    def test_seed_ignored_by_deterministic_algorithms(self):
        algorithm = make_algorithm("rotor-push", n_nodes=31, placement_seed=1, seed=5)
        assert isinstance(algorithm, RotorPush)

    def test_kwargs_forwarded(self):
        algorithm = make_algorithm(
            "rotor-push", n_nodes=31, placement_seed=1, exact_swaps=True
        )
        assert algorithm.exact_swaps is True


class TestBaseBehaviour:
    def test_serve_returns_cost_record(self):
        algorithm = make_algorithm("static-oblivious", n_nodes=15, placement_seed=3)
        record = algorithm.serve(4)
        assert record.element == 4
        assert record.access_cost == algorithm.network.ledger.records[0].access_cost

    def test_run_returns_result_with_totals(self):
        algorithm = make_algorithm("rotor-push", n_nodes=15, placement_seed=3)
        result = algorithm.run([1, 2, 3, 1, 1])
        assert isinstance(result, RunResult)
        assert result.n_requests == 5
        assert result.total_cost == result.total_access_cost + result.total_adjustment_cost
        assert len(result.per_request) == 5

    def test_run_attaches_metadata(self):
        algorithm = make_algorithm("rotor-push", n_nodes=15, placement_seed=3)
        result = algorithm.run([0, 1], metadata={"tag": "unit"})
        assert result.metadata["tag"] == "unit"

    def test_run_result_averages(self):
        result = RunResult(
            algorithm="x",
            n_nodes=15,
            n_requests=4,
            total_access_cost=8,
            total_adjustment_cost=4,
        )
        assert result.average_access_cost == 2.0
        assert result.average_adjustment_cost == 1.0
        assert result.average_total_cost == 3.0

    def test_run_result_zero_requests(self):
        result = RunResult(
            algorithm="x", n_nodes=1, n_requests=0, total_access_cost=0, total_adjustment_cost=0
        )
        assert result.average_total_cost == 0.0

    def test_run_result_to_dict_is_json_friendly(self):
        import json

        algorithm = make_algorithm("move-half", n_nodes=15, placement_seed=3)
        result = algorithm.run([5, 6, 5])
        payload = json.dumps(result.to_dict())
        assert "move-half" in payload

    def test_reset_costs_keeps_configuration(self):
        algorithm = make_algorithm("rotor-push", n_nodes=15, placement_seed=3)
        algorithm.run([1, 2, 3])
        placement = algorithm.network.placement()
        algorithm.reset_costs()
        assert algorithm.network.ledger.n_requests == 0
        assert algorithm.network.placement() == placement

    def test_keep_records_false(self):
        algorithm = make_algorithm(
            "rotor-push", n_nodes=15, placement_seed=3, keep_records=False
        )
        result = algorithm.run([1, 2, 3])
        assert result.per_request == []
        assert result.n_requests == 3

    def test_abstract_class_cannot_be_instantiated(self, network_depth3):
        with pytest.raises(TypeError):
            OnlineTreeAlgorithm(network_depth3)  # type: ignore[abstract]

    def test_static_oblivious_requires_no_preparation(self):
        assert StaticOblivious.requires_preparation is False
