"""Behavioural tests for Random-Push."""

from __future__ import annotations

import pytest

from repro.algorithms import RandomPush
from repro.core import CompleteBinaryTree, TreeNetwork


def fresh_random_push(depth: int = 3, seed: int = 1, exact_swaps: bool = False) -> RandomPush:
    network = TreeNetwork(CompleteBinaryTree.from_depth(depth), with_rotor=False)
    return RandomPush(network, seed=seed, exact_swaps=exact_swaps)


class TestBasics:
    def test_is_not_deterministic(self):
        assert RandomPush.is_deterministic is False

    def test_requested_element_lands_at_root(self):
        algorithm = fresh_random_push(depth=4)
        for element in (3, 28, 11, 3, 19):
            algorithm.serve(element)
            assert algorithm.network.element_at(0) == element

    def test_root_request_has_no_swaps(self):
        algorithm = fresh_random_push()
        record = algorithm.serve(0)
        assert record.access_cost == 1
        assert record.adjustment_cost == 0

    def test_cost_bounded_by_four_times_depth(self):
        algorithm = fresh_random_push(depth=5, seed=9)
        for element in range(0, 63, 4):
            level = algorithm.network.level_of(element)
            record = algorithm.serve(element)
            assert record.total_cost <= max(1, 4 * level)

    def test_bijection_preserved(self, rng):
        algorithm = fresh_random_push(depth=4, seed=2)
        for _ in range(300):
            algorithm.serve(rng.randrange(31))
        algorithm.network.validate()


class TestRandomness:
    def test_same_seed_gives_identical_runs(self):
        sequence = [5, 9, 14, 2, 5, 11, 7, 5]
        first = fresh_random_push(seed=77).run(sequence)
        second = fresh_random_push(seed=77).run(sequence)
        assert first.total_cost == second.total_cost

    def test_different_seeds_can_differ(self):
        sequence = list(range(15)) * 5
        costs = {fresh_random_push(seed=s).run(sequence).total_cost for s in range(6)}
        assert len(costs) > 1

    def test_target_levels_are_respected(self):
        """The displaced element stays on the requested element's level."""
        algorithm = fresh_random_push(depth=4, seed=3)
        element = 25
        level = algorithm.network.level_of(element)
        elements_on_level_before = set(algorithm.network.elements_at_level(level))
        algorithm.serve(element)
        elements_on_level_after = set(algorithm.network.elements_at_level(level))
        # Exactly one element left the level (the requested one, to the root)
        # and exactly one arrived (the one pushed down from the level above),
        # unless the random target was the requested node itself.
        left = elements_on_level_before - elements_on_level_after
        assert left == {element} or left == set()

    def test_exact_swaps_matches_cycle_realisation(self):
        sequence = [5, 12, 3, 9, 5, 14]
        fast = fresh_random_push(seed=4, exact_swaps=False)
        exact = fresh_random_push(seed=4, exact_swaps=True)
        fast_result = fast.run(sequence)
        exact_result = exact.run(sequence)
        assert fast.network.placement() == exact.network.placement()
        assert fast_result.total_cost == exact_result.total_cost

    def test_expected_behaviour_matches_rotor_on_average(self):
        """Over a uniform workload Random-Push and Rotor-Push have very close cost.

        This is the paper's Q4 observation (Figure 5b: mean difference around
        zero); here we only check the two averages are within 15% of each other
        on a small instance, which is robust at this scale.
        """
        import random

        from repro.algorithms import RotorPush

        generator = random.Random(99)
        sequence = [generator.randrange(63) for _ in range(2_000)]
        random_cost = fresh_random_push(depth=5, seed=8).run(sequence).average_total_cost
        rotor_network = TreeNetwork(CompleteBinaryTree.from_depth(5), with_rotor=True)
        rotor_cost = RotorPush(rotor_network).run(sequence).average_total_cost
        assert random_cost == pytest.approx(rotor_cost, rel=0.15)
