"""Batch-vs-scalar and array-vs-python backend equivalence property tests.

The array backend (typed-array placement + vectorised ``serve_batch``) is a
pure throughput optimisation: for every registered algorithm, every registered
workload kind, every chunking and both record modes, it must produce exactly
the same final placement, ledger totals and per-request cost records as the
canonical scalar python backend.  These tests pin that contract, including the
chunk-boundary edge cases (chunk 1, chunk larger than the stream, uneven tail)
and the simulated NumPy-less environment (typed arrays without vectorisation,
plus the pure-Python Zipf sampler).
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import available_algorithms, make_algorithm
from repro.core import backend as backend_mod
from repro.core.cost import CostLedger
from repro.exceptions import BackendError, CostAccountingError, WorkloadError
from repro.workloads.spec import WorkloadSpec, build_workload

N_NODES = 63
N_REQUESTS = 300
PLACEMENT_SEED = 11
ALGORITHM_SEED = 13

#: One spec per registered workload kind (universe size 63 throughout).
WORKLOAD_SPECS = {
    "uniform": WorkloadSpec.create("uniform", seed=5, n_elements=N_NODES),
    "zipf": WorkloadSpec.create("zipf", seed=5, n_elements=N_NODES, exponent=1.4),
    "temporal": WorkloadSpec.create(
        "temporal",
        seed=5,
        n_elements=N_NODES,
        repeat_probability=0.6,
        base=WorkloadSpec.create("zipf", seed=6, n_elements=N_NODES, exponent=2.0),
    ),
    "combined-locality": WorkloadSpec.create(
        "combined-locality",
        seed=5,
        n_elements=N_NODES,
        zipf_exponent=1.4,
        repeat_probability=0.5,
    ),
    "markov": WorkloadSpec.create(
        "markov",
        seed=5,
        n_elements=N_NODES,
        n_neighbours=4,
        self_loop=0.3,
        neighbour_probability=0.4,
    ),
    "mixture": WorkloadSpec.create(
        "mixture",
        seed=5,
        n_elements=N_NODES,
        components=(
            WorkloadSpec.create("uniform", seed=7, n_elements=N_NODES),
            WorkloadSpec.create("zipf", seed=8, n_elements=N_NODES, exponent=1.8),
        ),
        weights=(1.0, 2.0),
    ),
    "fixed-sequence": WorkloadSpec.create(
        "fixed-sequence",
        n_elements=N_NODES,
        sequence=tuple((7 * i + 3) % N_NODES for i in range(N_REQUESTS)),
    ),
}

#: Chunkings covering the edge cases: single-request chunks, an uneven tail
#: (300 = 42 * 7 + 6), a power-of-two mid-size, and one chunk larger than the
#: whole stream.
CHUNK_SIZES = (1, 7, 64, N_REQUESTS + 1)


def serve_outcome(algorithm, kind, backend, chunk_size, keep_records):
    """Serve the workload stream and return every observable of the run."""
    workload = build_workload(WORKLOAD_SPECS[kind])
    as_array = backend == "array" and backend_mod.HAS_NUMPY
    instance = make_algorithm(
        algorithm,
        n_nodes=N_NODES,
        placement_seed=PLACEMENT_SEED,
        seed=ALGORITHM_SEED,
        keep_records=keep_records,
        backend=backend,
    )
    result = instance.run_stream(
        workload.iter_requests(N_REQUESTS, chunk_size, as_array=as_array)
    )
    network = instance.network
    return {
        "n_requests": result.n_requests,
        "access": result.total_access_cost,
        "adjustment": result.total_adjustment_cost,
        "records": list(result.per_request),
        "placement": network.placement(),
        "rotor": list(network.rotor._pointers) if network.rotor is not None else None,
    }


@pytest.fixture(scope="module")
def scalar_baselines():
    """Canonical python-backend outcome per (algorithm, kind, keep_records)."""
    baselines = {}
    for algorithm in available_algorithms():
        for kind in WORKLOAD_SPECS:
            for keep_records in (False, True):
                baselines[(algorithm, kind, keep_records)] = serve_outcome(
                    algorithm, kind, "python", N_REQUESTS, keep_records
                )
    return baselines


@pytest.mark.parametrize("kind", sorted(WORKLOAD_SPECS))
@pytest.mark.parametrize("algorithm", available_algorithms())
def test_array_backend_matches_scalar_python(algorithm, kind, scalar_baselines):
    """Array backend == python backend for every chunking, totals-only mode."""
    expected = scalar_baselines[(algorithm, kind, False)]
    for chunk_size in CHUNK_SIZES:
        outcome = serve_outcome(algorithm, kind, "array", chunk_size, False)
        assert outcome == expected, (algorithm, kind, chunk_size)


@pytest.mark.parametrize("kind", ["combined-locality", "fixed-sequence"])
@pytest.mark.parametrize("algorithm", available_algorithms())
def test_array_backend_matches_records_too(algorithm, kind, scalar_baselines):
    """Per-request cost records are byte-identical across backends/chunkings."""
    expected = scalar_baselines[(algorithm, kind, True)]
    for chunk_size in (1, 7, N_REQUESTS + 1):
        outcome = serve_outcome(algorithm, kind, "array", chunk_size, True)
        assert outcome == expected, (algorithm, kind, chunk_size)


@pytest.mark.parametrize("algorithm", available_algorithms())
def test_python_backend_chunking_is_semantics_free(algorithm, scalar_baselines):
    """Chunk size never changes python-backend results either."""
    expected = scalar_baselines[(algorithm, "combined-locality", False)]
    for chunk_size in CHUNK_SIZES:
        outcome = serve_outcome(algorithm, "combined-locality", chunk_size=chunk_size,
                                backend="python", keep_records=False)
        assert outcome == expected, (algorithm, chunk_size)


class TestServeBatchDirect:
    """Direct serve_batch calls (outside run_stream) behave like serve()."""

    def _pair(self, backend):
        return (
            make_algorithm(
                "rotor-push",
                n_nodes=N_NODES,
                placement_seed=1,
                keep_records=True,
                backend=backend,
            ),
            make_algorithm(
                "rotor-push",
                n_nodes=N_NODES,
                placement_seed=1,
                keep_records=True,
                backend="python",
            ),
        )

    def test_empty_chunk_serves_nothing(self):
        batched, _ = self._pair("array")
        assert batched.serve_batch([]) == 0
        assert batched.network.ledger.n_requests == 0

    def test_batch_equals_request_by_request(self):
        batched, scalar = self._pair("array")
        requests = [3, 3, 41, 7, 7, 7, 0, 62, 41]
        assert batched.serve_batch(requests) == len(requests)
        for element in requests:
            scalar.serve(element)
        assert batched.network.placement() == scalar.network.placement()
        assert batched.network.ledger.records == scalar.network.ledger.records

    def test_out_of_range_element_rejects_whole_chunk(self):
        from repro.exceptions import MappingError

        if not backend_mod.HAS_NUMPY:
            pytest.skip("up-front chunk validation is a vectorised-path contract")
        batched, _ = self._pair("array")
        before = batched.network.placement()
        with pytest.raises(MappingError):
            batched.serve_batch([1, 2, N_NODES, 3])
        # the batch bounds check validates up front: nothing was served
        assert batched.network.ledger.n_requests == 0
        assert batched.network.placement() == before

    def test_ndarray_chunk_on_python_backend(self):
        if not backend_mod.HAS_NUMPY:
            pytest.skip("ndarray chunks need NumPy")
        np = backend_mod.np
        batched, scalar = self._pair("python")
        requests = [5, 5, 17, 30]
        batched.serve_batch(np.asarray(requests))
        for element in requests:
            scalar.serve(element)
        assert batched.network.ledger.records == scalar.network.ledger.records


class TestWithoutNumPy:
    """Simulated NumPy-less environment via the backend module flag."""

    def test_auto_resolves_to_python(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "HAS_NUMPY", False)
        assert backend_mod.resolve_backend(None) == "python"
        assert backend_mod.resolve_backend("auto") == "python"
        assert backend_mod.resolve_backend("array") == "array"

    def test_as_array_transport_refused(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "HAS_NUMPY", False)
        workload = build_workload(WORKLOAD_SPECS["uniform"])
        with pytest.raises(WorkloadError):
            next(workload.iter_requests(10, 4, as_array=True))

    def test_typed_array_backend_still_serves_correctly(self, monkeypatch):
        expected = serve_outcome("move-to-front", "uniform", "python", 64, True)
        monkeypatch.setattr(backend_mod, "HAS_NUMPY", False)
        outcome = serve_outcome("move-to-front", "uniform", "array", 64, True)
        assert outcome == expected

    def test_pure_python_zipf_sampler_is_deterministic(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "HAS_NUMPY", False)
        workload = build_workload(WORKLOAD_SPECS["zipf"])
        first = workload.generate(200)
        rebuilt = build_workload(WORKLOAD_SPECS["zipf"])
        streamed = [e for chunk in rebuilt.iter_requests(200, 9) for e in chunk]
        assert first == streamed
        assert all(0 <= element < N_NODES for element in first)
        # reseed restores the pristine sampler state (cumulative CDF + perm)
        rebuilt.reseed(5)
        assert rebuilt.generate(200) == first


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(BackendError):
            backend_mod.resolve_backend("fortran")
        with pytest.raises(BackendError):
            make_algorithm("rotor-push", n_nodes=N_NODES, backend="fortran")

    def test_auto_picks_array_only_for_vectorised_algorithms(self):
        if not backend_mod.HAS_NUMPY:
            pytest.skip("auto resolves to python without NumPy")
        vectorised = make_algorithm("rotor-push", n_nodes=N_NODES)
        scalar_only = make_algorithm("max-push", n_nodes=N_NODES)
        assert vectorised.network.backend == "array"
        assert scalar_only.network.backend == "python"

    def test_explicit_backend_is_honoured(self):
        forced = make_algorithm("max-push", n_nodes=N_NODES, backend="array")
        assert forced.network.backend == "array"

    def test_network_copy_preserves_backend(self):
        instance = make_algorithm("rotor-push", n_nodes=N_NODES, backend="array")
        clone = instance.network.copy()
        assert clone.backend == "array"
        assert clone.placement() == instance.network.placement()


class TestLedgerBatchAccounting:
    def test_record_batch_totals(self):
        ledger = CostLedger(keep_records=False)
        ledger.record_batch(10, 25, 7)
        assert ledger.n_requests == 10
        assert ledger.total_access_cost == 25
        assert ledger.total_adjustment_cost == 7

    def test_record_batch_refuses_to_drop_records(self):
        ledger = CostLedger(keep_records=True)
        with pytest.raises(CostAccountingError):
            ledger.record_batch(3, 5, 0)

    def test_record_batch_refuses_negative_totals(self):
        ledger = CostLedger(keep_records=False)
        with pytest.raises(CostAccountingError):
            ledger.record_batch(3, -1, 0)

    def test_record_batch_columns_matches_individual_records(self):
        batched = CostLedger(keep_records=True)
        batched.record_batch_columns([4, 2, 9], [1, 0, 3], [2, 0, 5])
        scalar = CostLedger(keep_records=True)
        for element, level, swaps in [(4, 1, 2), (2, 0, 0), (9, 3, 5)]:
            scalar.record_request(element, level, swaps)
        assert batched.records == scalar.records
        assert batched.snapshot_totals() == scalar.snapshot_totals()

    def test_record_batch_columns_default_swaps_are_zero(self):
        ledger = CostLedger(keep_records=True)
        ledger.record_batch_columns([1, 2], [2, 4])
        assert ledger.total_adjustment_cost == 0
        assert [record.adjustment_cost for record in ledger.records] == [0, 0]

    def test_record_batch_columns_rejects_ragged_columns(self):
        ledger = CostLedger(keep_records=False)
        with pytest.raises(CostAccountingError):
            ledger.record_batch_columns([1, 2], [0])

    def test_record_batch_while_open_raises(self):
        ledger = CostLedger(keep_records=False)
        ledger.open_request(1, 0)
        with pytest.raises(CostAccountingError):
            ledger.record_batch(1, 1, 0)
