"""Property tests: trusted fast paths are bit-identical to the reference loop.

Every registered algorithm now has two serve paths:

* the *reference* path (``serve_reference`` / ``_adjust``), which uses the
  validated swap primitives and the open/charge/close ledger protocol; and
* the *fast* path (``serve`` on non-marking networks and the ``run`` loop with
  ``keep_records=False``), which uses trusted bit-arithmetic primitives and
  batch cost accounting.

These tests assert, over seeded random workloads, that the two paths produce
identical total access/adjustment costs, identical final placements, identical
rotor pointers, and (where records are kept) identical per-request cost
records.
"""

from __future__ import annotations

import pytest

from repro.algorithms.base import OnlineTreeAlgorithm
from repro.algorithms.registry import ALGORITHMS, make_algorithm
from repro.workloads.composite import CombinedLocalityWorkload
from repro.workloads.uniform import UniformWorkload

N_NODES = 127
N_REQUESTS = 1_500

ALGORITHM_NAMES = sorted(ALGORITHMS)


def _make(name: str, placement_seed: int, keep_records: bool):
    return make_algorithm(
        name,
        n_nodes=N_NODES,
        placement_seed=placement_seed,
        seed=11,
        keep_records=keep_records,
    )


def _workload_sequence(seed: int, uniform: bool = False):
    if uniform:
        return UniformWorkload(N_NODES, seed=seed).generate(N_REQUESTS)
    return CombinedLocalityWorkload(N_NODES, 1.5, 0.4, seed=seed).generate(N_REQUESTS)


def _run_reference(algorithm, sequence):
    if algorithm.requires_preparation:
        algorithm.prepare(list(sequence))
    for element in sequence:
        algorithm.serve_reference(element)


def _assert_same_state(fast, reference, context: str):
    fast_ledger = fast.network.ledger
    ref_ledger = reference.network.ledger
    assert fast_ledger.n_requests == ref_ledger.n_requests, context
    assert fast_ledger.total_access_cost == ref_ledger.total_access_cost, context
    assert fast_ledger.total_adjustment_cost == ref_ledger.total_adjustment_cost, context
    assert fast.network.placement() == reference.network.placement(), context
    if fast.network.rotor is not None:
        assert fast.network.rotor.pointers() == reference.network.rotor.pointers(), context


@pytest.mark.parametrize("workload_seed", [0, 5])
@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_fast_run_loop_matches_reference(name, workload_seed):
    """The keep_records=False fast loop equals the checked reference loop."""
    sequence = _workload_sequence(workload_seed)
    fast = _make(name, placement_seed=7 + workload_seed, keep_records=False)
    reference = _make(name, placement_seed=7 + workload_seed, keep_records=False)
    fast.run(sequence)
    _run_reference(reference, sequence)
    _assert_same_state(fast, reference, f"{name} seed={workload_seed}")


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_fast_serve_records_match_reference(name):
    """serve() with records kept produces the same per-request costs as the reference."""
    sequence = _workload_sequence(3, uniform=True)
    fast = _make(name, placement_seed=21, keep_records=True)
    reference = _make(name, placement_seed=21, keep_records=True)
    if fast.requires_preparation:
        fast.prepare(list(sequence))
    for element in sequence:
        fast.serve(element)
    _run_reference(reference, sequence)
    _assert_same_state(fast, reference, name)
    assert fast.network.ledger.records == reference.network.ledger.records, name


@pytest.mark.parametrize("name", ["rotor-push", "random-push", "move-half"])
def test_fast_path_matches_exact_swap_realisation(name):
    """The fast path also equals the explicit adjacent-swap realisation."""
    sequence = _workload_sequence(9)
    fast = _make(name, placement_seed=13, keep_records=False)
    reference = make_algorithm(
        name,
        n_nodes=N_NODES,
        placement_seed=13,
        seed=11,
        keep_records=False,
        exact_swaps=True,
    )
    fast.run(sequence)
    _run_reference(reference, sequence)
    _assert_same_state(fast, reference, name)


class _UnportedPromote(OnlineTreeAlgorithm):
    """Toy algorithm without a trusted port: exercises the fallback fast loop."""

    name = "unported-promote"

    def _adjust(self, element, level):
        network = self.network
        node = network.node_of(element)
        if node != 0:
            network.mark(node)
            network.swap_with_parent(node)


def test_unported_algorithm_fallback_loop_matches_reference():
    """Algorithms whose _adjust_fast returns None replay the checked path."""
    sequence = _workload_sequence(2)
    fast = _UnportedPromote.for_tree(
        n_nodes=N_NODES, placement_seed=31, keep_records=False
    )
    reference = _UnportedPromote.for_tree(
        n_nodes=N_NODES, placement_seed=31, keep_records=False
    )
    fast.run(sequence)
    _run_reference(reference, sequence)
    _assert_same_state(fast, reference, "unported fallback")


def test_unported_fallback_invalidates_marks_between_requests():
    """Marks set by a fallback _adjust do not leak into the next request."""
    algorithm = _UnportedPromote.for_tree(
        n_nodes=N_NODES, placement_seed=31, keep_records=False
    )
    deep_element = algorithm.network.element_at(N_NODES - 1)
    marked_node = algorithm.network.node_of(deep_element)
    algorithm.run([deep_element])
    assert not algorithm.network.is_marked(marked_node)


@pytest.mark.parametrize("name", ["rotor-push", "max-push", "move-to-front"])
def test_enforced_marking_still_matches_fast_path(name):
    """Runs on marking-enforcing networks (fully checked) equal the fast path."""
    sequence = _workload_sequence(4)
    fast = _make(name, placement_seed=17, keep_records=False)
    checked = make_algorithm(
        name,
        n_nodes=N_NODES,
        placement_seed=17,
        seed=11,
        keep_records=False,
        enforce_marking=True,
    )
    fast.run(sequence)
    checked.run(sequence)
    _assert_same_state(fast, checked, name)
