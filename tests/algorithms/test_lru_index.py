"""Tests for the per-level least-recently-used index."""

from __future__ import annotations

import pytest

from repro.algorithms.lru_index import LevelLRUIndex
from repro.core import CompleteBinaryTree, TreeNetwork
from repro.exceptions import AlgorithmError


@pytest.fixture
def network():
    return TreeNetwork(CompleteBinaryTree.from_depth(3))


@pytest.fixture
def index(network):
    return LevelLRUIndex(network)


class TestInitialState:
    def test_initial_levels_match_placement(self, network, index):
        index.validate_against(network)

    def test_never_accessed_elements_tie_break_by_identifier(self, index):
        # All of level 3 (elements 7..14 under the identity placement) are
        # unaccessed, so the LRU is the smallest identifier.
        assert index.least_recently_used(3) == 7

    def test_last_access_defaults_to_never(self, index):
        assert index.last_access(5) == -1


class TestAccessTracking:
    def test_accessed_element_stops_being_lru(self, index):
        index.record_access(7)
        assert index.least_recently_used(3) == 8

    def test_lru_is_oldest_access(self, index):
        for element in (9, 8, 7):
            index.record_access(element)
        for element in (10, 11, 12, 13, 14):
            index.record_access(element)
        assert index.least_recently_used(3) == 9

    def test_exclude_skips_element(self, index):
        assert index.least_recently_used(3, exclude=7) == 8

    def test_exclude_preserves_heap(self, index):
        assert index.least_recently_used(3, exclude=7) == 8
        # The excluded element must still be retrievable afterwards.
        assert index.least_recently_used(3) == 7

    def test_no_eligible_element_raises(self, index):
        with pytest.raises(AlgorithmError):
            index.least_recently_used(0, exclude=0)


class TestMoves:
    def test_move_changes_level(self, index):
        index.move(7, 1)
        assert index.level_of(7) == 1
        assert index.least_recently_used(1) == 1  # elements 1, 2 and now 7; 1 wins ties

    def test_move_to_same_level_is_noop(self, index):
        index.move(7, 3)
        assert index.level_of(7) == 3

    def test_move_out_of_range_raises(self, index):
        with pytest.raises(AlgorithmError):
            index.move(7, 9)

    def test_stale_entries_are_skipped(self, index):
        index.record_access(7)
        index.move(7, 0)
        # Element 7 left level 3 entirely; its old heap entries must not surface.
        assert index.least_recently_used(3) == 8

    def test_validate_against_detects_mismatch(self, network, index):
        index.move(7, 0)
        with pytest.raises(AlgorithmError):
            index.validate_against(network)
