"""Behavioural tests for Move-Half."""

from __future__ import annotations

import pytest

from repro.algorithms import MoveHalf
from repro.core import CompleteBinaryTree, TreeNetwork


def fresh_move_half(depth: int = 3, exact_swaps: bool = True) -> MoveHalf:
    network = TreeNetwork(CompleteBinaryTree.from_depth(depth))
    return MoveHalf(network, exact_swaps=exact_swaps)


class TestServeBehaviour:
    def test_accessed_element_moves_to_half_depth(self):
        algorithm = fresh_move_half()
        element = 12  # level 3 under the identity placement
        algorithm.serve(element)
        assert algorithm.network.level_of(element) == 1  # floor(3 / 2)

    def test_partner_takes_the_vacated_node(self):
        algorithm = fresh_move_half()
        element = 12
        source = algorithm.network.node_of(element)
        # The partner is the least recently used element of level 1 (element 1
        # under the identity placement, tie-broken by identifier).
        algorithm.serve(element)
        assert algorithm.network.element_at(source) == 1

    def test_only_two_elements_move(self):
        algorithm = fresh_move_half()
        before = algorithm.network.placement()
        algorithm.serve(12)
        after = algorithm.network.placement()
        moved = [node for node in range(15) if before[node] != after[node]]
        assert len(moved) == 2

    def test_root_access_is_a_noop(self):
        algorithm = fresh_move_half()
        record = algorithm.serve(0)
        assert record.adjustment_cost == 0
        assert algorithm.network.element_at(0) == 0

    def test_level1_access_exchanges_with_root(self):
        algorithm = fresh_move_half()
        record = algorithm.serve(2)
        assert algorithm.network.level_of(2) == 0
        assert record.adjustment_cost == 1

    def test_adjustment_cost_is_twice_distance_minus_one(self):
        algorithm = fresh_move_half()
        element = 12
        source = algorithm.network.node_of(element)
        partner_node = algorithm.network.node_of(1)
        distance = algorithm.network.tree.distance(source, partner_node)
        record = algorithm.serve(element)
        assert record.adjustment_cost == 2 * distance - 1

    def test_exact_and_analytic_variants_agree(self):
        sequence = [12, 7, 3, 12, 9, 14, 2, 12]
        exact = fresh_move_half(exact_swaps=True)
        analytic = fresh_move_half(exact_swaps=False)
        exact_result = exact.run(sequence)
        analytic_result = analytic.run(sequence)
        assert exact_result.total_cost == analytic_result.total_cost
        # The exchanged pair is identical, so the final placements agree too.
        assert exact.network.placement() == analytic.network.placement()

    def test_bijection_and_index_stay_consistent(self, rng):
        algorithm = fresh_move_half(depth=4)
        for _ in range(400):
            algorithm.serve(rng.randrange(31))
        algorithm.network.validate()
        algorithm._lru.validate_against(algorithm.network)

    def test_repeated_access_keeps_promoting(self):
        algorithm = fresh_move_half(depth=4)
        element = 30  # deepest level
        levels = []
        for _ in range(4):
            algorithm.serve(element)
            levels.append(algorithm.network.level_of(element))
        assert levels[0] == 2  # 4 // 2
        assert levels[-1] == 0  # eventually reaches the root
        assert levels == sorted(levels, reverse=True)

    def test_is_deterministic(self):
        sequence = [5, 9, 3, 5, 12, 1]
        assert (
            fresh_move_half().run(sequence).total_cost
            == fresh_move_half().run(sequence).total_cost
        )
