"""TrafficSpec: streaming == materialised, round-trips, eager validation.

The acceptance contract of the spec-shipped traffic pipeline:

* ``iter_trace`` chunked output concatenates to exactly the materialised
  :func:`trace_from_workloads` trace, for every interleaving policy × every
  per-source workload kind × every chunk size (the chunk size is a memory
  knob, never a semantics knob);
* a spec survives a JSON round-trip equal (and hash-equal) to the original;
* bad documents and bad constructions fail eagerly with name-listing errors.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import WorkloadError
from repro.network.traffic import (
    INTERLEAVINGS,
    TrafficSpec,
    iter_interleaving,
    trace_from_workloads,
)
from repro.workloads.spec import WorkloadSpec, build_workload

N_NODES = 16

#: One spec-able workload template per registered paper kind (seeded, so the
#: specs are runnable as-is).
WORKLOAD_TEMPLATES = {
    "uniform": WorkloadSpec.create("uniform", n_elements=N_NODES, seed=3),
    "zipf": WorkloadSpec.create("zipf", n_elements=N_NODES, exponent=1.5, seed=4),
    "temporal": WorkloadSpec.create(
        "temporal", n_elements=N_NODES, repeat_probability=0.5, seed=5
    ),
    "combined-locality": WorkloadSpec.create(
        "combined-locality",
        n_elements=N_NODES,
        zipf_exponent=1.4,
        repeat_probability=0.3,
        seed=6,
    ),
    "markov": WorkloadSpec.create(
        "markov",
        n_elements=N_NODES,
        n_neighbours=3,
        self_loop=0.2,
        neighbour_probability=0.5,
        seed=7,
    ),
}


def spec_for(policy: str, kinds=("uniform", "zipf", "temporal")) -> TrafficSpec:
    sources = {
        2 * index + 1: WORKLOAD_TEMPLATES[kind] for index, kind in enumerate(kinds)
    }
    weights = (
        {source: 1.0 + source for source in sources} if policy == "weighted" else None
    )
    return TrafficSpec.create(
        N_NODES, sources, interleaving=policy, weights=weights, seed=9
    )


def streamed_pairs(spec: TrafficSpec, requests_per_source: int, chunk_size: int):
    return [
        (source, destination)
        for sources, destinations in spec.iter_trace(requests_per_source, chunk_size)
        for source, destination in zip(sources, destinations)
    ]


class TestStreamingEqualsMaterialised:
    @pytest.mark.parametrize("policy", INTERLEAVINGS)
    @pytest.mark.parametrize("kind", sorted(WORKLOAD_TEMPLATES))
    def test_policy_times_kind(self, policy, kind):
        spec = spec_for(policy, kinds=(kind, kind, kind))
        trace = spec.build_trace(40)
        expected = [(r.source, r.destination) for r in trace.requests]
        assert streamed_pairs(spec, 40, 7) == expected

    @pytest.mark.parametrize("policy", INTERLEAVINGS)
    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 10_000])
    def test_chunk_size_is_a_memory_knob(self, policy, chunk_size):
        spec = spec_for(policy)
        expected = [(r.source, r.destination) for r in spec.build_trace(33).requests]
        assert streamed_pairs(spec, 33, chunk_size) == expected

    def test_materialised_path_is_trace_from_workloads(self):
        spec = spec_for("round_robin")
        workloads = {
            source: build_workload(workload) for source, workload in spec.sources
        }
        reference = trace_from_workloads(
            N_NODES, workloads, 25, interleave_seed=9, interleave="round_robin"
        )
        assert spec.build_trace(25) == reference

    @pytest.mark.parametrize("policy", INTERLEAVINGS)
    def test_trace_from_workloads_is_insertion_order_independent(self, policy):
        # both entry points draw from the canonical ascending source order,
        # whatever order the mapping was built in
        spec = spec_for(policy)
        shuffled = dict(reversed(spec.sources))
        reference = spec.build_trace(15)
        weights = spec.weight_dict() or None
        assert (
            trace_from_workloads(
                N_NODES,
                {s: build_workload(w) for s, w in shuffled.items()},
                15,
                interleave_seed=9,
                interleave=policy,
                weights=weights,
            )
            == reference
        )

    def test_every_source_emits_exactly_requests_per_source(self):
        for policy in INTERLEAVINGS:
            spec = spec_for(policy)
            trace = spec.build_trace(21)
            counts = {
                source: len(seq)
                for source, seq in trace.per_source_sequences().items()
            }
            assert counts == {source: 21 for source in spec.source_ids()}

    def test_zero_requests_is_an_empty_trace(self):
        spec = spec_for("uniform_pairs")
        assert list(spec.iter_trace(0)) == []
        assert len(spec.build_trace(0)) == 0

    def test_per_source_relative_order_is_the_workload_stream(self):
        # whatever the interleaving, each source's destinations arrive in its
        # own workload order (with the skip-self remap applied)
        spec = spec_for("weighted")
        sequences = spec.build_trace(30).per_source_sequences()
        for source, workload in spec.sources:
            raw = build_workload(workload).generate(30)
            replacement = (source + 1) % N_NODES
            expected = [d if d != source else replacement for d in raw]
            assert sequences[source] == expected


class TestInterleavingPolicies:
    def test_round_robin_is_deterministic_cycling(self):
        order = list(iter_interleaving("round_robin", [3, 1, 5], 2))
        assert order == [3, 1, 5, 3, 1, 5]

    def test_random_policies_are_seed_deterministic(self):
        for policy in ("uniform_pairs", "weighted"):
            first = list(iter_interleaving(policy, [0, 1, 2], 20, seed=13))
            second = list(iter_interleaving(policy, [0, 1, 2], 20, seed=13))
            other = list(iter_interleaving(policy, [0, 1, 2], 20, seed=14))
            assert first == second
            assert first != other

    def test_weighted_front_loads_heavy_sources(self):
        heavy, light = 0, 1
        order = list(
            iter_interleaving(
                "weighted", [heavy, light], 200, seed=1, weights={heavy: 50.0}
            )
        )
        # the heavy source should finish its budget well before the light one
        assert order.index(light) > 5
        assert sum(1 for s in order[:200] if s == heavy) > 150

    def test_unknown_policy_lists_the_registered_ones(self):
        with pytest.raises(WorkloadError, match="round_robin"):
            list(iter_interleaving("shuffle", [0, 1], 3))

    def test_validation_is_eager_not_deferred_to_first_iteration(self):
        # the call itself must raise; a never-consumed iterator would
        # otherwise hide the bad argument until it fails far from the caller
        with pytest.raises(WorkloadError):
            iter_interleaving("bogus", [0, 1], 3)
        with pytest.raises(WorkloadError):
            iter_interleaving("round_robin", [0, 1], -1)
        spec = spec_for("round_robin")
        with pytest.raises(WorkloadError):
            spec.iter_trace(-5)
        with pytest.raises(WorkloadError):
            spec.iter_trace(10, chunk_size=0)


class TestSpecValidation:
    def test_rejects_unknown_interleaving(self):
        with pytest.raises(WorkloadError, match="uniform_pairs"):
            TrafficSpec.create(
                N_NODES, {0: WORKLOAD_TEMPLATES["uniform"]}, interleaving="shuffle"
            )

    def test_rejects_unknown_workload_kind_eagerly(self):
        with pytest.raises(WorkloadError, match="registered kinds"):
            TrafficSpec.create(
                N_NODES, {0: WorkloadSpec(kind="zipff", params=(), seed=None)}
            )

    def test_rejects_universe_mismatch(self):
        with pytest.raises(WorkloadError, match="does not match"):
            TrafficSpec.create(
                N_NODES, {0: WorkloadSpec.create("uniform", n_elements=8)}
            )

    def test_rejects_out_of_range_and_duplicate_sources(self):
        with pytest.raises(WorkloadError, match="outside"):
            TrafficSpec.create(N_NODES, {N_NODES: WORKLOAD_TEMPLATES["uniform"]})
        with pytest.raises(WorkloadError, match="duplicate"):
            TrafficSpec(
                n_nodes=N_NODES,
                sources=(
                    (1, WORKLOAD_TEMPLATES["uniform"]),
                    (1, WORKLOAD_TEMPLATES["zipf"]),
                ),
            )

    def test_rejects_weights_for_unweighted_policies(self):
        with pytest.raises(WorkloadError, match="weighted"):
            TrafficSpec.create(
                N_NODES,
                {0: WORKLOAD_TEMPLATES["uniform"]},
                interleaving="round_robin",
                weights={0: 2.0},
            )

    def test_rejects_bad_weights(self):
        with pytest.raises(WorkloadError, match="positive"):
            TrafficSpec.create(
                N_NODES,
                {0: WORKLOAD_TEMPLATES["uniform"], 1: WORKLOAD_TEMPLATES["zipf"]},
                interleaving="weighted",
                weights={0: -1.0},
            )
        with pytest.raises(WorkloadError, match="non-sources"):
            TrafficSpec.create(
                N_NODES,
                {0: WORKLOAD_TEMPLATES["uniform"]},
                interleaving="weighted",
                weights={5: 1.0},
            )

    def test_short_trace_backed_source_fails_with_a_named_error(self):
        # a fixed-sequence workload truncates at its trace length; both the
        # materialised and the streaming path must name the short source
        # instead of dying with an index/iterator error mid-interleave
        spec = TrafficSpec.create(
            N_NODES,
            {
                0: WorkloadSpec.create(
                    "fixed-sequence", n_elements=N_NODES, sequence=(1, 2, 3)
                ),
                1: WORKLOAD_TEMPLATES["uniform"],
            },
        )
        with pytest.raises(WorkloadError, match="source 0"):
            spec.build_trace(10)
        with pytest.raises(WorkloadError, match="source 0"):
            streamed_pairs(spec, 10, 4)
        # exactly the trace length is fine on both paths
        assert streamed_pairs(spec, 3, 2) == [
            (r.source, r.destination) for r in spec.build_trace(3).requests
        ]

    def test_needs_at_least_one_source_and_two_nodes(self):
        with pytest.raises(WorkloadError, match="at least one source"):
            TrafficSpec.create(N_NODES, {})
        with pytest.raises(WorkloadError, match="two network nodes"):
            TrafficSpec.create(1, {0: WORKLOAD_TEMPLATES["uniform"]})


class TestRoundTripAndSeeding:
    @pytest.mark.parametrize("policy", INTERLEAVINGS)
    def test_json_round_trip_is_identity(self, policy):
        spec = spec_for(policy)
        document = json.loads(json.dumps(spec.to_dict()))
        revived = TrafficSpec.from_dict(document)
        assert revived == spec
        assert hash(revived) == hash(spec)

    def test_bad_documents_rejected(self):
        with pytest.raises(WorkloadError, match="not a traffic-spec document"):
            TrafficSpec.from_dict({"n_nodes": 4})
        with pytest.raises(WorkloadError, match="integer node identifiers"):
            TrafficSpec.from_dict(
                {
                    "n_nodes": N_NODES,
                    "sources": {
                        "zero": WORKLOAD_TEMPLATES["uniform"].to_dict()
                    },
                }
            )

    def test_with_seed_stamps_interleaving_and_every_source(self):
        template = TrafficSpec.create(
            N_NODES,
            {
                0: WorkloadSpec.create("uniform", n_elements=N_NODES),
                5: WorkloadSpec.create("uniform", n_elements=N_NODES),
            },
        )
        seeded = template.with_seed(100)
        assert seeded.seed == 100
        workload_seeds = [spec.seed for _source, spec in seeded.sources]
        assert len(set(workload_seeds)) == len(workload_seeds)
        assert all(seed is not None for seed in workload_seeds)
        # pure function of the seed: re-stamping reproduces the same spec
        assert template.with_seed(100) == seeded
        assert template.with_seed(101) != seeded

    def test_trial_seeds_never_collide_across_sources(self):
        template = TrafficSpec.create(
            N_NODES,
            {s: WorkloadSpec.create("uniform", n_elements=N_NODES) for s in range(4)},
        )
        seen = set()
        for trial_seed in range(50):
            for _source, spec in template.with_seed(trial_seed).sources:
                assert spec.seed not in seen
                seen.add(spec.seed)
