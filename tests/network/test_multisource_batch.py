"""Batch serve-trace dispatch on the multi-source substrate (PR-3 knobs lifted)."""

from __future__ import annotations

import pytest

from repro.core import backend as backend_mod
from repro.exceptions import BackendError
from repro.network import MultiSourceNetwork
from repro.network.traffic import uniform_trace

N_NODES = 24
N_SOURCES = 6


def fresh_network(**kwargs) -> MultiSourceNetwork:
    return MultiSourceNetwork(
        N_NODES, sources=range(N_SOURCES), base_seed=11, **kwargs
    )


@pytest.fixture(scope="module")
def trace():
    return uniform_trace(N_NODES, 600, n_sources=N_SOURCES, seed=2)


@pytest.fixture(scope="module")
def legacy_summary(trace):
    """Request-by-request serving, the pre-batch reference semantics."""
    network = fresh_network()
    for request in trace:
        network.serve(request.source, request.destination)
    return network.cost_summary(), network.per_source_summary()


class TestServeTraceBatch:
    def test_batched_equals_request_by_request(self, trace, legacy_summary):
        network = fresh_network()
        summary = network.serve_trace(trace)
        assert summary == legacy_summary[0]
        assert network.per_source_summary() == legacy_summary[1]

    @pytest.mark.parametrize("chunk_size", [1, 7, 1_000_000])
    def test_chunk_size_never_changes_results(self, trace, legacy_summary, chunk_size):
        network = fresh_network()
        assert network.serve_trace(trace, chunk_size=chunk_size) == legacy_summary[0]

    @pytest.mark.parametrize("backend", ["python", "array", "auto"])
    def test_backends_bit_identical(self, trace, legacy_summary, backend):
        network = fresh_network(backend=backend)
        assert network.serve_trace(trace) == legacy_summary[0]

    def test_serve_trace_backend_knob_on_pristine_network(self, trace, legacy_summary):
        # a pristine network honours a backend override by rebuilding its
        # trees from the seeds (bit-identical initial placements)
        network = fresh_network(backend="python")
        summary = network.serve_trace(trace, backend="array")
        assert summary == legacy_summary[0]
        assert network.backend == "array"

    def test_backend_switch_after_serving_raises(self, trace):
        network = fresh_network(backend="python")
        network.serve(0, 3)
        with pytest.raises(BackendError, match="cannot switch"):
            network.serve_trace(trace, backend="array")

    def test_same_backend_after_serving_is_fine(self, trace):
        network = fresh_network(backend="python")
        network.serve(0, 3)
        summary = network.serve_trace(trace, backend="python")
        assert summary["n_requests"] == len(trace) + 1

    def test_unknown_backend_name_rejected(self, trace):
        network = fresh_network()
        with pytest.raises(BackendError):
            network.serve_trace(trace, backend="fortran")

    def test_constructor_rejects_unknown_backend(self):
        with pytest.raises(BackendError):
            fresh_network(backend="fortran")


class TestSingleSourceBatch:
    def test_serve_batch_counts_and_matches_serial(self):
        from repro.network import SingleSourceTreeNetwork

        destinations = [3, 9, 9, 14, 3, 20, 7]
        serial = SingleSourceTreeNetwork(
            source=0, destinations=range(1, N_NODES), placement_seed=4, algorithm_seed=5
        )
        for destination in destinations:
            serial.serve(destination)
        batched = SingleSourceTreeNetwork(
            source=0, destinations=range(1, N_NODES), placement_seed=4, algorithm_seed=5
        )
        served = batched.serve_batch(destinations)
        assert served == len(destinations)
        assert batched.n_served == serial.n_served
        assert batched.cost_summary() == serial.cost_summary()
