"""Tests for the reconfigurable-network substrate (traffic, single- and multi-source)."""

from __future__ import annotations

import pytest

from repro.exceptions import AlgorithmError, WorkloadError
from repro.network import (
    MultiSourceNetwork,
    SingleSourceTreeNetwork,
    TrafficRequest,
    TrafficTrace,
    degree_statistics,
    multi_source_topology,
    single_source_topology,
    theoretical_degree_bound,
    trace_from_workloads,
    uniform_trace,
)
from repro.workloads import MarkovWorkload, UniformWorkload


class TestTrafficTrace:
    def test_rejects_self_requests(self):
        with pytest.raises(WorkloadError):
            TrafficTrace(n_nodes=4, requests=[TrafficRequest(1, 1)])

    def test_rejects_out_of_range(self):
        with pytest.raises(WorkloadError):
            TrafficTrace(n_nodes=4, requests=[TrafficRequest(0, 9)])

    def test_per_source_sequences(self):
        trace = TrafficTrace(
            n_nodes=4,
            requests=[TrafficRequest(0, 1), TrafficRequest(1, 2), TrafficRequest(0, 3)],
        )
        split = trace.per_source_sequences()
        assert split[0] == [1, 3]
        assert split[1] == [2]
        assert trace.sources() == [0, 1]

    def test_traffic_matrix(self):
        trace = TrafficTrace(
            n_nodes=3, requests=[TrafficRequest(0, 1), TrafficRequest(0, 1), TrafficRequest(2, 0)]
        )
        matrix = trace.traffic_matrix()
        assert matrix[(0, 1)] == 2
        assert matrix[(2, 0)] == 1

    def test_uniform_trace_properties(self):
        trace = uniform_trace(n_nodes=16, n_requests=500, n_sources=4, seed=1)
        assert len(trace) == 500
        assert all(request.source < 4 for request in trace)
        assert all(request.source != request.destination for request in trace)

    def test_uniform_trace_validation(self):
        with pytest.raises(WorkloadError):
            uniform_trace(n_nodes=1, n_requests=5)
        with pytest.raises(WorkloadError):
            uniform_trace(n_nodes=4, n_requests=-1)

    def test_trace_from_workloads(self):
        workloads = {
            0: MarkovWorkload(8, seed=1),
            3: UniformWorkload(8, seed=2),
        }
        trace = trace_from_workloads(8, workloads, requests_per_source=50, interleave_seed=3)
        assert len(trace) == 100
        assert set(trace.sources()) == {0, 3}
        assert all(request.source != request.destination for request in trace)

    def test_trace_from_workloads_validates_universe(self):
        with pytest.raises(WorkloadError):
            trace_from_workloads(8, {0: UniformWorkload(4, seed=1)}, requests_per_source=5)


class TestSingleSourceTree:
    def test_requires_destinations(self):
        with pytest.raises(AlgorithmError):
            SingleSourceTreeNetwork(source=0, destinations=[])

    def test_source_cannot_be_destination(self):
        with pytest.raises(AlgorithmError):
            SingleSourceTreeNetwork(source=0, destinations=[0, 1])

    def test_universe_padded_to_complete_size(self):
        network = SingleSourceTreeNetwork(source=0, destinations=list(range(1, 11)))
        assert network.n_destinations == 10
        assert network.tree_size == 15

    def test_serve_returns_cost(self):
        network = SingleSourceTreeNetwork(
            source=0, destinations=list(range(1, 8)), placement_seed=1
        )
        record = network.serve(3)
        assert record.access_cost >= 1
        assert network.n_served == 1

    def test_unknown_destination_rejected(self):
        network = SingleSourceTreeNetwork(source=0, destinations=[1, 2, 3])
        with pytest.raises(AlgorithmError):
            network.serve(9)

    def test_destination_depth_shrinks_after_repeated_requests(self):
        network = SingleSourceTreeNetwork(
            source=0, destinations=list(range(1, 32)), placement_seed=5
        )
        for _ in range(3):
            network.serve(17)
        assert network.destination_depth(17) == 0

    def test_serve_sequence_aggregates(self):
        network = SingleSourceTreeNetwork(
            source=2, destinations=[0, 1, 3, 4, 5, 6, 7], algorithm="static-opt"
        )
        result = network.serve_sequence([1, 1, 4, 1])
        assert result.n_requests == 4
        assert result.total_adjustment_cost == 0

    def test_cost_summary(self):
        network = SingleSourceTreeNetwork(source=0, destinations=[1, 2, 3], placement_seed=1)
        network.serve(2)
        summary = network.cost_summary()
        assert summary["n_requests"] == 1
        assert summary["source"] == 0


class TestMultiSourceNetwork:
    def test_validation(self):
        with pytest.raises(AlgorithmError):
            MultiSourceNetwork(n_nodes=1)
        with pytest.raises(AlgorithmError):
            MultiSourceNetwork(n_nodes=4, sources=[])
        with pytest.raises(AlgorithmError):
            MultiSourceNetwork(n_nodes=4, sources=[9])

    def test_default_sources_are_all_nodes(self):
        network = MultiSourceNetwork(n_nodes=4)
        assert network.sources == [0, 1, 2, 3]

    def test_serve_trace_accumulates_costs(self):
        network = MultiSourceNetwork(n_nodes=8, sources=[0, 1], algorithm="rotor-push")
        trace = uniform_trace(n_nodes=8, n_requests=200, n_sources=2, seed=4)
        summary = network.serve_trace(trace)
        assert summary["n_requests"] == 200
        assert summary["total_cost"] > 0
        assert summary["n_sources"] == 2.0

    def test_trace_size_must_match(self):
        network = MultiSourceNetwork(n_nodes=8, sources=[0])
        with pytest.raises(AlgorithmError):
            network.serve_trace(uniform_trace(n_nodes=16, n_requests=10, seed=1))

    def test_per_source_summary(self):
        network = MultiSourceNetwork(n_nodes=8, sources=[0, 5])
        network.serve(0, 3)
        network.serve(5, 2)
        summaries = network.per_source_summary()
        assert summaries[0]["n_requests"] == 1
        assert summaries[5]["n_requests"] == 1

    def test_unknown_source_rejected(self):
        network = MultiSourceNetwork(n_nodes=8, sources=[0])
        with pytest.raises(AlgorithmError):
            network.serve(3, 1)

    def test_locality_reduces_cost_vs_static(self):
        """Self-adjusting per-source trees beat static ones on clustered traffic."""

        def run(algorithm: str) -> float:
            network = MultiSourceNetwork(
                n_nodes=64, sources=[0, 1], algorithm=algorithm, base_seed=3
            )
            workloads = {
                0: MarkovWorkload(
                    64, n_neighbours=2, self_loop=0.85, neighbour_probability=0.1, seed=10
                ),
                1: MarkovWorkload(
                    64, n_neighbours=2, self_loop=0.85, neighbour_probability=0.1, seed=11
                ),
            }
            trace = trace_from_workloads(64, workloads, requests_per_source=800, interleave_seed=1)
            return network.serve_trace(trace)["total_cost"]

        assert run("rotor-push") < run("static-oblivious")


class TestTopology:
    def test_single_source_topology_degrees_bounded(self):
        network = SingleSourceTreeNetwork(
            source=0, destinations=list(range(1, 16)), placement_seed=2
        )
        graph = single_source_topology(network)
        stats = degree_statistics(graph)
        assert stats["max_degree"] <= 4.0
        assert stats["n_nodes"] == 16

    def test_multi_source_topology_degree_bound(self):
        network = MultiSourceNetwork(n_nodes=10, sources=[0, 1, 2], base_seed=1)
        graph = multi_source_topology(network)
        stats = degree_statistics(graph)
        assert stats["max_degree"] <= theoretical_degree_bound(3)
        assert stats["n_nodes"] == 10

    def test_topology_follows_reconfiguration(self):
        network = SingleSourceTreeNetwork(
            source=0, destinations=list(range(1, 16)), placement_seed=2
        )
        before_root_neighbours = set(single_source_topology(network).neighbors(0))
        for _ in range(3):
            network.serve(7)
        after = single_source_topology(network)
        # Destination 7 is now hosted at the tree root, hence attached to the source.
        assert 7 in set(after.neighbors(0))
        assert before_root_neighbours != {7} or 7 in before_root_neighbours

    def test_degree_statistics_empty_graph(self):
        import networkx as nx

        stats = degree_statistics(nx.Graph())
        assert stats["n_nodes"] == 0.0
