"""Tracing: deterministic span IDs and the bounded ring buffer."""

from __future__ import annotations

import pytest

from repro.telemetry.trace import (
    Tracer,
    default_tracer,
    span_id,
    use_tracer,
)


class TestSpanId:
    def test_same_parts_same_id(self):
        assert span_id("payload", "abc123") == span_id("payload", "abc123")

    def test_different_parts_differ(self):
        assert span_id("payload", "abc") != span_id("payload", "abd")
        assert span_id("serve", "alpha", 0) != span_id("serve", "alpha", 1)

    def test_id_shape(self):
        identifier = span_id("serve", "alpha", 3)
        assert len(identifier) == 16
        assert int(identifier, 16) >= 0

    def test_mixed_types_stringify_stably(self):
        assert span_id("run", 1, None) == span_id("run", "1", "None")


class TestTracer:
    def test_record_and_dump(self):
        tracer = Tracer(capacity=8)
        tracer.record("work", span_id("w", 1), start=10.0, duration=0.5, trial=1)
        dump = tracer.dump()
        assert dump["capacity"] == 8
        assert dump["dropped"] == 0
        (span,) = dump["spans"]
        assert span["name"] == "work"
        assert span["duration"] == 0.5
        assert span["attrs"] == {"trial": 1}

    def test_ring_drops_oldest_and_counts(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            tracer.record("s", span_id("s", index), seq=index)
        dump = tracer.dump()
        assert dump["dropped"] == 2
        assert [span["attrs"]["seq"] for span in dump["spans"]] == [2, 3, 4]
        assert len(tracer) == 3

    def test_span_contextmanager_measures_duration(self):
        tracer = Tracer(capacity=4)
        with tracer.span("block", span_id("b", 1), kind="test"):
            pass
        (span,) = tracer.spans()
        assert span.duration is not None and span.duration >= 0
        assert span.attrs == {"kind": "test"}

    def test_span_records_even_on_error(self):
        tracer = Tracer(capacity=4)
        with pytest.raises(RuntimeError):
            with tracer.span("boom", span_id("b", 2)):
                raise RuntimeError("boom")
        assert len(tracer) == 1

    def test_clear_resets_everything(self):
        tracer = Tracer(capacity=2)
        tracer.record("a", span_id("a"))
        tracer.record("b", span_id("b"))
        tracer.record("c", span_id("c"))
        tracer.clear()
        assert tracer.dump() == {"capacity": 2, "dropped": 0, "spans": []}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_use_tracer_swaps_and_restores(self):
        scratch = Tracer(capacity=4)
        before = default_tracer()
        with use_tracer(scratch):
            assert default_tracer() is scratch
        assert default_tracer() is before
