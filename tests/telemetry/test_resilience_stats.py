"""ResilienceStats as registry views: per-run deltas over global counters."""

from __future__ import annotations

import pytest

from repro.resilience import ResilienceStats
from repro.telemetry.registry import MetricsRegistry, use_registry


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestPerRunViews:
    def test_fields_start_at_zero(self, registry):
        stats = ResilienceStats(registry=registry)
        assert stats.executed == 0
        assert stats.cache_hits == 0
        assert stats.degraded is False
        assert stats.degraded_remote is False

    def test_increment_style_assignment(self, registry):
        stats = ResilienceStats(registry=registry)
        stats.executed = stats.executed + 1
        stats.executed += 2
        assert stats.executed == 3
        assert registry.counter("repro_run_executed_total").total() == 3

    def test_two_instances_have_independent_views(self, registry):
        first = ResilienceStats(registry=registry)
        first.retries = 5
        second = ResilienceStats(registry=registry)
        assert second.retries == 0
        second.retries = 2
        assert first.retries == 7  # first sees the shared counter move
        assert registry.counter("repro_run_retries_total").total() == 7

    def test_flags_view_as_bools(self, registry):
        stats = ResilienceStats(registry=registry)
        stats.degraded = True
        assert stats.degraded is True
        stats.degraded_remote = True
        assert stats.degraded_remote is True
        # re-setting True is idempotent on the counter
        before = registry.counter("repro_run_degraded_total").total()
        stats.degraded = True
        assert registry.counter("repro_run_degraded_total").total() == before

    def test_lowering_assignment_shifts_the_baseline(self, registry):
        stats = ResilienceStats(registry=registry)
        stats.stored = 4
        stats.stored = 1  # counters are monotonic; the view absorbs the drop
        assert stats.stored == 1
        assert registry.counter("repro_run_stored_total").total() == 4

    def test_as_dict_lists_every_field(self, registry):
        stats = ResilienceStats(registry=registry)
        stats.executed = 2
        stats.degraded = True
        doc = stats.as_dict()
        assert doc["executed"] == 2
        assert doc["degraded"] is True
        assert set(doc) == {
            "executed",
            "cache_hits",
            "stored",
            "retries",
            "pool_rebuilds",
            "degraded",
            "corrupt_entries",
            "remote_executed",
            "lease_expiries",
            "workers_lost",
            "duplicate_results",
            "degraded_remote",
        }

    def test_unknown_attribute_is_loud(self, registry):
        stats = ResilienceStats(registry=registry)
        with pytest.raises(AttributeError):
            stats.no_such_field

    def test_default_registry_is_used_when_not_injected(self):
        scratch = MetricsRegistry()
        with use_registry(scratch):
            stats = ResilienceStats()
            stats.executed = 3
        assert scratch.counter("repro_run_executed_total").total() == 3
