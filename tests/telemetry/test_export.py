"""Export surfaces: HTTP endpoint, ``metrics`` frames, scrape(), snapshots."""

from __future__ import annotations

import json
import socket
import urllib.request

import pytest

from repro.dist.framing import recv_frame, send_frame
from repro.dist.protocol import PROTOCOL_VERSION
from repro.dist.worker import WorkerServer
from repro.exceptions import ExperimentError
from repro.serve.server import ServeServer
from repro.telemetry.export import (
    MetricsHTTPServer,
    metrics_frame,
    scrape,
    start_metrics_server,
)
from repro.telemetry.registry import MetricsRegistry, render_prometheus
from repro.telemetry.snapshots import MetricsSnapshotWriter
from repro.telemetry.trace import Tracer, span_id


@pytest.fixture()
def registry():
    registry = MetricsRegistry()
    registry.counter("demo_total", "Demo.").inc(3)
    registry.histogram("demo_seconds", buckets=(1.0,)).observe(0.5)
    return registry


@pytest.fixture()
def tracer():
    tracer = Tracer(capacity=16)
    tracer.record("demo", span_id("demo", 1), duration=0.25)
    return tracer


class TestMetricsFrame:
    def test_frame_shape(self, registry):
        frame = metrics_frame(registry)
        assert frame["type"] == "metrics"
        assert frame["metrics"]["counters"]["demo_total"]["values"][0]["value"] == 3
        assert "trace" not in frame

    def test_frame_with_trace(self, registry, tracer):
        frame = metrics_frame(registry, tracer, include_trace=True)
        assert len(frame["trace"]["spans"]) == 1

    def test_frame_is_json_serialisable(self, registry, tracer):
        json.dumps(metrics_frame(registry, tracer, include_trace=True))


class TestHTTPServer:
    @pytest.fixture()
    def endpoint(self, registry, tracer):
        server = MetricsHTTPServer(
            "tcp://127.0.0.1:0", registry=registry, tracer=tracer
        ).start()
        yield server
        server.stop()

    def get(self, endpoint, path):
        # endpoint.url is the advertised scrape target and ends in /metrics;
        # raw path tests build from host/port
        base = f"http://{endpoint.host}:{endpoint.port}"
        with urllib.request.urlopen(base + path, timeout=10) as response:
            return response.status, response.read().decode("utf-8")

    def test_metrics_text(self, endpoint, registry):
        status, body = self.get(endpoint, "/metrics")
        assert status == 200
        assert body == render_prometheus(registry.snapshot())
        assert "demo_total 3" in body

    def test_metrics_json(self, endpoint, registry):
        _status, body = self.get(endpoint, "/metrics.json")
        assert json.loads(body) == registry.snapshot()

    def test_trace_json(self, endpoint, tracer):
        _status, body = self.get(endpoint, "/trace.json")
        assert json.loads(body) == tracer.dump()

    def test_unknown_path_404(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.get(endpoint, "/nope")
        assert excinfo.value.code == 404

    def test_bad_bind_is_loud(self, registry):
        with pytest.raises(ExperimentError):
            MetricsHTTPServer("tcp://256.0.0.999:1", registry=registry)

    def test_start_metrics_server_none_passthrough(self, registry):
        assert start_metrics_server(None, registry=registry) is None
        assert start_metrics_server("", registry=registry) is None


class TestScrapeSurfaces:
    def test_http_scrape_matches_snapshot(self, registry, tracer):
        endpoint = MetricsHTTPServer(
            "tcp://127.0.0.1:0", registry=registry, tracer=tracer
        ).start()
        try:
            # both the advertised /metrics URL and the bare base work
            result = scrape(endpoint.url)
            assert result["metrics"] == registry.snapshot()
            assert "trace" not in result
            traced = scrape(
                f"http://{endpoint.host}:{endpoint.port}", include_trace=True
            )
            assert traced["trace"] == tracer.dump()
        finally:
            endpoint.stop()

    def test_worker_frame_scrape(self):
        registry = MetricsRegistry()
        tracer = Tracer(capacity=8)
        worker = WorkerServer(registry=registry, tracer=tracer).start()
        try:
            result = scrape(f"tcp://{worker.host}:{worker.port}", include_trace=True)
        finally:
            worker.stop()
        counters = result["metrics"]["counters"]
        assert "repro_worker_sessions_total" in counters
        assert result["trace"]["capacity"] == 8

    def test_serve_frame_scrape(self):
        registry = MetricsRegistry()
        server = ServeServer(
            n_nodes=15, algorithm="rotor-push", registry=registry
        ).start()
        try:
            result = scrape(server.address)
        finally:
            server.stop()
        gauges = result["metrics"]["gauges"]
        assert "repro_serve_sessions" in gauges

    def test_serve_raw_metrics_frame(self):
        """The typed frame is reachable over the raw protocol, pre-session."""
        server = ServeServer(n_nodes=15, algorithm="rotor-push").start()
        try:
            sock = socket.create_connection((server.host, server.port), timeout=10)
            try:
                send_frame(sock, {"type": "hello", "protocol": PROTOCOL_VERSION})
                assert recv_frame(sock)["type"] == "welcome"
                send_frame(sock, {"type": "metrics", "trace": True})
                reply = recv_frame(sock)
            finally:
                sock.close()
        finally:
            server.stop()
        assert reply["type"] == "metrics"
        assert set(reply["metrics"]) == {"counters", "gauges", "histograms"}
        assert "spans" in reply["trace"]

    def test_unsupported_scheme_is_loud(self):
        with pytest.raises(ExperimentError):
            scrape("udp://127.0.0.1:9")


class TestSnapshotWriter:
    def test_snapshot_lines_are_jsonl(self, tmp_path, registry):
        path = tmp_path / "metrics.jsonl"
        writer = MetricsSnapshotWriter(path, interval=60.0, registry=registry)
        writer.write_snapshot()
        registry.counter("demo_total").inc()
        writer.write_snapshot()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["metrics"]["counters"]["demo_total"]["values"][0]["value"] == 3
        assert second["metrics"]["counters"]["demo_total"]["values"][0]["value"] == 4
        assert first["ts"] <= second["ts"]

    def test_stop_flushes_a_final_snapshot(self, tmp_path, registry):
        path = tmp_path / "metrics.jsonl"
        writer = MetricsSnapshotWriter(path, interval=3600.0, registry=registry)
        writer.start()
        writer.stop()
        assert len(path.read_text().splitlines()) == 1

    def test_bad_interval_rejected(self, tmp_path, registry):
        with pytest.raises(ValueError):
            MetricsSnapshotWriter(tmp_path / "m.jsonl", interval=0, registry=registry)
