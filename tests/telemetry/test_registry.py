"""The metrics core: families, labels, bucket edges, rendering, injection."""

from __future__ import annotations

import threading

import pytest

from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    MetricError,
    MetricsRegistry,
    NullRegistry,
    default_registry,
    render_prometheus,
    use_registry,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        counter = registry.counter("jobs_total", "Jobs.")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5
        assert counter.total() == 5

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("jobs_total")
        with pytest.raises(MetricError, match="cannot decrease"):
            counter.inc(-1)

    def test_labelled_rows_are_independent(self, registry):
        counter = registry.counter("hits_total", labels=("source",))
        counter.inc(source="alpha")
        counter.inc(2, source="beta")
        assert counter.value(source="alpha") == 1
        assert counter.value(source="beta") == 2
        assert counter.total() == 3

    def test_label_mismatch_is_loud(self, registry):
        counter = registry.counter("hits_total", labels=("source",))
        with pytest.raises(MetricError, match="takes labels"):
            counter.inc(worker="x")
        with pytest.raises(MetricError, match="takes labels"):
            counter.inc()


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("depth")
        gauge.set(7)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value() == 5

    def test_gauges_may_go_negative(self, registry):
        gauge = registry.gauge("delta")
        gauge.dec(3)
        assert gauge.value() == -3


class TestHistogram:
    def test_le_is_inclusive_on_the_bucket_edge(self, registry):
        histogram = registry.histogram("lat", buckets=(0.1, 1.0))
        histogram.observe(0.1)  # exactly on the first bound -> first bucket
        histogram.observe(0.5)
        histogram.observe(2.0)  # above the last bound -> +Inf
        assert histogram.bucket_counts() == [1, 1, 1]
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(2.6)

    def test_buckets_must_strictly_increase(self, registry):
        with pytest.raises(MetricError, match="strictly increasing"):
            registry.histogram("bad", buckets=(1.0, 1.0))
        with pytest.raises(MetricError, match="strictly increasing"):
            registry.histogram("bad2", buckets=(2.0, 1.0))
        with pytest.raises(MetricError, match="at least one bucket"):
            registry.histogram("bad3", buckets=())

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


class TestRegistry:
    def test_get_or_create_returns_the_same_family(self, registry):
        assert registry.counter("a_total") is registry.counter("a_total")

    def test_type_clash_is_loud(self, registry):
        registry.counter("x")
        with pytest.raises(MetricError, match="already registered as a counter"):
            registry.gauge("x")
        with pytest.raises(MetricError, match="already registered as a counter"):
            registry.histogram("x")

    def test_label_clash_is_loud(self, registry):
        registry.counter("y_total", labels=("a",))
        with pytest.raises(MetricError, match="registered with labels"):
            registry.counter("y_total", labels=("b",))

    def test_bucket_clash_is_loud(self, registry):
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(MetricError, match="registered with buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_bad_names_rejected(self, registry):
        for name in ("", "9lead", "has space", "has-dash", None):
            with pytest.raises(MetricError):
                registry.counter(name)

    def test_snapshot_sections(self, registry):
        registry.counter("c_total", "C.").inc()
        registry.gauge("g").set(2)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert snapshot["counters"]["c_total"]["values"] == [
            {"labels": {}, "value": 1}
        ]
        assert snapshot["gauges"]["g"]["values"][0]["value"] == 2
        assert snapshot["histograms"]["h"]["buckets"] == [1.0]

    def test_concurrent_increments_do_not_lose_counts(self, registry):
        counter = registry.counter("race_total")
        histogram = registry.histogram("race_lat", buckets=(1.0,))

        def worker():
            for _ in range(1000):
                counter.inc()
                histogram.observe(0.5)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 8000
        assert histogram.count() == 8000


class TestDefaultRegistry:
    def test_use_registry_swaps_and_restores(self):
        scratch = MetricsRegistry()
        before = default_registry()
        with use_registry(scratch):
            assert default_registry() is scratch
        assert default_registry() is before

    def test_null_registry_records_nothing(self):
        null = NullRegistry()
        null.counter("anything").inc(5)
        null.gauge("g").set(2)
        null.histogram("h").observe(1.0)
        assert null.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
        assert null.counter("anything").value() == 0


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self, registry):
        registry.counter("c_total", "Count of things.").inc(3)
        registry.gauge("g", labels=("source",)).set(2, source="al\"pha")
        text = registry.render_prometheus()
        assert "# HELP c_total Count of things.\n" in text
        assert "# TYPE c_total counter\n" in text
        assert "c_total 3\n" in text
        assert "# TYPE g gauge\n" in text
        assert 'g{source="al\\"pha"} 2\n' in text

    def test_histogram_series_are_cumulative(self, registry):
        histogram = registry.histogram("lat", "Latency.", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        text = registry.render_prometheus()
        assert 'lat_bucket{le="0.1"} 1\n' in text
        assert 'lat_bucket{le="1"} 3\n' in text
        assert 'lat_bucket{le="+Inf"} 4\n' in text
        assert "lat_sum 6.05\n" in text
        assert "lat_count 4\n" in text

    def test_rendering_from_snapshot_matches_live(self, registry):
        registry.counter("c_total").inc()
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        assert render_prometheus(registry.snapshot()) == registry.render_prometheus()

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(MetricsRegistry().snapshot()) == ""
