"""CLI observability surface: ``repro metrics``, cache JSON, lease flags."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.dist.protocol import ExecutorSpec, compose_executor_address
from repro.dist.worker import WorkerServer
from repro.exceptions import ExperimentError
from repro.telemetry.export import MetricsHTTPServer
from repro.telemetry.registry import MetricsRegistry


class TestComposeExecutorAddress:
    def test_passthrough_without_flags(self):
        assert compose_executor_address(None) is None
        assert compose_executor_address("tcp://h:1") == "tcp://h:1"

    def test_flags_fold_into_the_query_string(self):
        composed = compose_executor_address("tcp://h:1", lease=45.0, heartbeat=2.0)
        spec = ExecutorSpec.parse(composed)
        assert spec.lease_timeout == 45.0
        assert spec.heartbeat_interval == 2.0

    def test_flags_override_query_values(self):
        composed = compose_executor_address("tcp://h:1?lease=9", lease=45.0)
        assert ExecutorSpec.parse(composed).lease_timeout == 45.0

    def test_untouched_query_values_survive(self):
        composed = compose_executor_address("tcp://h:1?heartbeat=3", lease=45.0)
        spec = ExecutorSpec.parse(composed)
        assert spec.heartbeat_interval == 3.0
        assert spec.lease_timeout == 45.0

    def test_flags_without_executor_name_themselves(self):
        with pytest.raises(ExperimentError, match="--lease"):
            compose_executor_address(None, lease=5.0)
        with pytest.raises(ExperimentError, match="--heartbeat"):
            compose_executor_address(None, heartbeat=5.0)

    def test_nonpositive_values_name_the_field(self):
        with pytest.raises(ExperimentError, match="lease"):
            compose_executor_address("tcp://h:1", lease=0)
        with pytest.raises(ExperimentError, match="heartbeat"):
            compose_executor_address("tcp://h:1", heartbeat=-1)


class TestRunFlags:
    def test_parser_accepts_lease_and_heartbeat(self):
        args = build_parser().parse_args(
            ["run", "smoke", "--executor", "tcp://h:1", "--lease", "45",
             "--heartbeat", "2"]
        )
        assert args.lease == 45.0
        assert args.heartbeat == 2.0

    @pytest.mark.parametrize("flag", ["--lease", "--heartbeat"])
    @pytest.mark.parametrize("value", ["0", "-2", "nope"])
    def test_bad_values_rejected_at_parse(self, flag, value, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "smoke", flag, value])
        assert flag in capsys.readouterr().err

    def test_flags_without_executor_fail_cleanly(self, capsys):
        assert main(["run", "smoke", "--lease", "5"]) == 2
        err = capsys.readouterr().err
        assert "--lease" in err and "--executor" in err


class TestWorkerFlags:
    def test_parser_accepts_metrics_and_heartbeat(self):
        args = build_parser().parse_args(
            ["worker", "--metrics", "tcp://127.0.0.1:0", "--heartbeat", "0.5"]
        )
        assert args.metrics == "tcp://127.0.0.1:0"
        assert args.heartbeat == 0.5

    def test_bad_heartbeat_rejected_at_parse(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker", "--heartbeat", "0"])
        assert "--heartbeat" in capsys.readouterr().err


class TestServeFlags:
    def test_parser_accepts_metrics_options(self):
        args = build_parser().parse_args(
            ["serve", "--metrics", "tcp://127.0.0.1:0",
             "--metrics-snapshot-interval", "2.5"]
        )
        assert args.metrics == "tcp://127.0.0.1:0"
        assert args.metrics_snapshot_interval == 2.5

    def test_bad_interval_rejected_at_parse(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--metrics-snapshot-interval", "0"])
        assert "--metrics-snapshot-interval" in capsys.readouterr().err


class TestCacheStatsJson:
    def test_json_document_shape(self, tmp_path, capsys):
        assert main(["cache", "stats", "--json", "--cache-dir", str(tmp_path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == {"cache_dir", "entries", "bytes", "orphans", "corrupt"}
        assert doc["entries"] == 0
        assert doc["corrupt"] == 0

    def test_human_output_unchanged_without_flag(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "entries:" in capsys.readouterr().out


class TestMetricsCommand:
    def test_scrapes_http_endpoint(self, capsys):
        registry = MetricsRegistry()
        registry.counter("demo_total", "Demo.").inc(7)
        endpoint = MetricsHTTPServer("tcp://127.0.0.1:0", registry=registry).start()
        try:
            assert main(["metrics", endpoint.url]) == 0
        finally:
            endpoint.stop()
        out = capsys.readouterr().out
        assert "demo_total 7" in out

    def test_scrapes_worker_frame_and_json(self, capsys):
        worker = WorkerServer(registry=MetricsRegistry()).start()
        try:
            address = f"tcp://{worker.host}:{worker.port}"
            assert main(["metrics", address]) == 0
            text = capsys.readouterr().out
            assert "repro_worker_sessions_total" in text
            assert main(["metrics", address, "--json"]) == 0
            doc = json.loads(capsys.readouterr().out)
            assert "counters" in doc["metrics"]
            assert main(["metrics", address, "--trace"]) == 0
            assert "# trace:" in capsys.readouterr().out
        finally:
            worker.stop()

    def test_unreachable_target_fails_cleanly(self, capsys):
        assert main(["metrics", "tcp://127.0.0.1:1"]) == 2
        assert "repro metrics:" in capsys.readouterr().err
