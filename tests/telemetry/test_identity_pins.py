"""Byte-identity pins: telemetry is observational, results never move.

These integration pins run the serve replay loop and the distributed
executor with metrics fully enabled (registry, tracer, snapshot writer in
the serve log directory) and assert the results are byte-identical to the
uninstrumented serial path.  They use only the pure-python backend surface,
so they pin the same bytes in both CI legs (with and without NumPy).
"""

from __future__ import annotations

import repro
from repro.algorithms.registry import AlgorithmSpec
from repro.dist.coordinator import run_distributed
from repro.dist.worker import WorkerServer
from repro.plans import plan_with_overrides
from repro.resilience import ResilienceStats
from repro.resilience.store import result_to_dict
from repro.serve.client import drive_load
from repro.serve.ingest import read_ingest_log
from repro.serve.replay import build_replay_plan
from repro.serve.server import ServeServer
from repro.sim.runner import SpecSource, TrialPayload, _execute_trial
from repro.telemetry.registry import MetricsRegistry, use_registry
from repro.telemetry.snapshots import MetricsSnapshotWriter
from repro.telemetry.trace import Tracer, use_tracer
from repro.workloads.spec import WorkloadSpec


def make_payloads(n: int = 4):
    spec = WorkloadSpec.create(
        "combined-locality", n_elements=15, zipf_exponent=1.4, repeat_probability=0.4
    )
    return [
        TrialPayload(
            algorithm=AlgorithmSpec.coerce("rotor-push"),
            source=SpecSource(spec.with_seed(trial), n_requests=60, chunk_size=32),
            n_nodes=15,
            placement_seed=100 + trial,
            algorithm_seed=200 + trial,
            keep_records=False,
            trial=trial,
        )
        for trial in range(n)
    ]


class TestServeReplayIdentityWithMetrics:
    def test_replay_matches_live_with_metrics_and_snapshots(self, tmp_path):
        log_dir = tmp_path / "ingest"
        registry = MetricsRegistry()
        tracer = Tracer(capacity=64)
        server = ServeServer(
            n_nodes=63,
            algorithm="rotor-push",
            base_seed=11,
            log_dir=str(log_dir),
            queue_limit=8,
            registry=registry,
            tracer=tracer,
        ).start()
        try:
            # the snapshot stream lives beside the ingest segments, exactly
            # where run_serve --log-dir puts it
            snapshots = MetricsSnapshotWriter(
                log_dir / "metrics.jsonl", interval=3600.0, registry=registry
            ).start()
            drive_load(
                server.address,
                ["alpha", "beta"],
                n_requests=40,
                batch_size=7,
                seed=3,
            )
            live_table = server.engine.cost_table()
            snapshots.stop()
        finally:
            server.stop()

        # the instrumentation actually fired...
        assert registry.counter("repro_serve_requests_total").total() == 80
        assert registry.histogram("repro_serve_latency_seconds").count() > 0
        assert len(tracer) > 0
        assert (log_dir / "metrics.jsonl").exists()

        # ...and the replay (metrics.jsonl sitting in the log dir) is
        # byte-identical to the live run
        replayed = repro.run(build_replay_plan(read_ingest_log(log_dir)))
        assert replayed.rows == live_table.rows
        assert replayed.format_text() == live_table.format_text()

    def test_replay_itself_is_metrics_invariant(self, tmp_path):
        log_dir = tmp_path / "ingest"
        server = ServeServer(
            n_nodes=31, algorithm="rotor-push", base_seed=5, log_dir=str(log_dir)
        ).start()
        try:
            drive_load(server.address, ["alpha"], n_requests=30, batch_size=5, seed=1)
        finally:
            server.stop()
        plan = build_replay_plan(read_ingest_log(log_dir))
        baseline = repro.run(plan_with_overrides(plan, n_jobs=1))
        with use_registry(MetricsRegistry()), use_tracer(Tracer(capacity=32)):
            instrumented = repro.run(plan_with_overrides(plan, n_jobs=1))
        assert instrumented.rows == baseline.rows
        assert instrumented.format_text() == baseline.format_text()


class TestDistSerialIdentityWithMetrics:
    def test_distributed_matches_serial_with_metrics(self):
        payloads = make_payloads(4)
        serial = [result_to_dict(_execute_trial(payload)) for payload in payloads]

        registry = MetricsRegistry()
        tracer = Tracer(capacity=64)
        worker = WorkerServer(registry=registry, tracer=tracer).start()
        try:
            with use_registry(registry), use_tracer(tracer):
                stats = ResilienceStats(registry=registry)
                results = run_distributed(
                    payloads,
                    f"tcp://{worker.host}:{worker.port}",
                    stats=stats,
                )
        finally:
            worker.stop()

        assert [result_to_dict(result) for result in results] == serial
        assert stats.remote_executed == 4
        # the instrumentation fired on both sides of the wire
        assert registry.counter("repro_worker_results_total").total() == 4
        assert registry.counter("repro_dist_leases_total").total() >= 4
        assert registry.histogram("repro_worker_lease_seconds").count() == 4
        span_names = {span.name for span in tracer.spans()}
        assert "worker.lease" in span_names
        assert "dist.lease" in span_names

    def test_worker_and_coordinator_agree_on_span_ids(self):
        payloads = make_payloads(2)
        registry = MetricsRegistry()
        tracer = Tracer(capacity=64)
        worker = WorkerServer(registry=registry, tracer=tracer).start()
        try:
            with use_registry(registry), use_tracer(tracer):
                run_distributed(payloads, f"tcp://{worker.host}:{worker.port}")
        finally:
            worker.stop()
        by_name: dict = {}
        for span in tracer.spans():
            by_name.setdefault(span.name, set()).add(span.id)
        # the deterministic payload-key IDs join across the wire
        assert by_name["worker.lease"] == by_name["dist.lease"]
